// ddmcheck unit tests: ddmtrace round-trip plus one synthesized
// violation per checker invariant class (core/check.h), and the
// happens-before model - update edges order same-block threads, the
// block barrier orders cross-block ones.
#include "core/check.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/builder.h"
#include "core/ddmtrace.h"
#include "core/error.h"

namespace tflux::core {
namespace {

/// One block: a (writes [0x1000,0x1040)) --arc--> b (reads the same),
/// plus independent c. Ids: a=0, b=1, c=2, inlet=3, outlet=4 (RC 2).
Program make_diamond() {
  ProgramBuilder b("diamond");
  const BlockId b0 = b.add_block();
  Footprint fa;
  fa.write(0x1000, 64);
  const ThreadId a = b.add_thread(b0, "a", {}, std::move(fa));
  Footprint fb;
  fb.read(0x1000, 64);
  const ThreadId x = b.add_thread(b0, "b", {}, std::move(fb));
  b.add_thread(b0, "c", {});
  b.add_arc(a, x);
  return b.build(BuildOptions{.num_kernels = 1});
}

/// Like make_diamond but WITHOUT the ordering arc: a faithful trace
/// still races on the overlapping footprints.
Program make_racy() {
  ProgramBuilder b("racy");
  const BlockId b0 = b.add_block();
  Footprint fa;
  fa.write(0x1000, 64);
  b.add_thread(b0, "a", {}, std::move(fa));
  Footprint fb;
  fb.read(0x1000, 64);
  b.add_thread(b0, "b", {}, std::move(fb));
  return b.build(BuildOptions{.num_kernels = 1});
}

void add(ExecTrace& t, TraceEvent event, std::uint16_t actor,
         std::uint32_t a, std::uint32_t b, std::uint32_t c = 0) {
  TraceRecord r;
  r.seq = t.records.size();
  r.event = event;
  r.actor = actor;
  r.a = a;
  r.b = b;
  r.c = c;
  t.records.push_back(r);
}

/// A faithful single-kernel execution of make_diamond().
ExecTrace diamond_trace() {
  ExecTrace t;
  t.program = "diamond";
  t.kernels = 1;
  t.groups = 1;
  t.pipelined = false;
  add(t, TraceEvent::kDispatch, 1, 3, 0);   // inlet
  add(t, TraceEvent::kComplete, 0, 3, 0);
  add(t, TraceEvent::kInletLoad, 1, 0, 0);
  add(t, TraceEvent::kDispatch, 1, 0, 0);   // roots a, c
  add(t, TraceEvent::kDispatch, 1, 2, 0);
  add(t, TraceEvent::kComplete, 0, 0, 0);   // a -> b
  add(t, TraceEvent::kUpdate, 0, 0, 1);
  add(t, TraceEvent::kDispatch, 1, 1, 0);
  add(t, TraceEvent::kComplete, 0, 2, 0);   // c -> outlet
  add(t, TraceEvent::kUpdate, 0, 2, 4);
  add(t, TraceEvent::kComplete, 0, 1, 0);   // b -> outlet
  add(t, TraceEvent::kUpdate, 0, 1, 4);
  add(t, TraceEvent::kDispatch, 1, 4, 0);   // outlet
  add(t, TraceEvent::kComplete, 0, 4, 0);
  add(t, TraceEvent::kOutletDone, 0, 0, 0);
  return t;
}

bool has(const CheckReport& report, CheckDiag code) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [code](const CheckFinding& f) {
                       return f.code == code;
                     });
}

TEST(DdmTraceTest, SaveLoadRoundTrip) {
  ExecTrace t = diamond_trace();
  t.policy = "adaptive";
  t.lockfree = false;
  t.app = "trapez";
  t.size = "small";
  t.unroll = 8;
  t.tsu_capacity = 64;
  const ExecTrace back = load_trace(save_trace(t));
  EXPECT_EQ(back.program, "diamond");
  EXPECT_EQ(back.kernels, 1);
  EXPECT_EQ(back.groups, 1);
  EXPECT_EQ(back.policy, "adaptive");
  EXPECT_FALSE(back.pipelined);
  EXPECT_FALSE(back.lockfree);
  EXPECT_EQ(back.app, "trapez");
  EXPECT_EQ(back.size, "small");
  EXPECT_EQ(back.unroll, 8u);
  EXPECT_EQ(back.tsu_capacity, 64u);
  ASSERT_EQ(back.records.size(), t.records.size());
  for (std::size_t i = 0; i < t.records.size(); ++i) {
    EXPECT_EQ(back.records[i].seq, t.records[i].seq);
    EXPECT_EQ(back.records[i].event, t.records[i].event);
    EXPECT_EQ(back.records[i].actor, t.records[i].actor);
    EXPECT_EQ(back.records[i].a, t.records[i].a);
    EXPECT_EQ(back.records[i].b, t.records[i].b);
  }
}

TEST(DdmTraceTest, LoadSortsRecordsBySeq) {
  const ExecTrace t = load_trace(
      "ddmtrace 1\n"
      "e 5 complete 0 1 0\n"
      "e 2 dispatch 1 1 0\n");
  ASSERT_EQ(t.records.size(), 2u);
  EXPECT_EQ(t.records[0].seq, 2u);
  EXPECT_EQ(t.records[1].seq, 5u);
}

TEST(DdmTraceTest, LoadRejectsMalformedInput) {
  EXPECT_THROW(load_trace(""), TFluxError);
  EXPECT_THROW(load_trace("e 0 dispatch 1 1 0\n"), TFluxError);
  EXPECT_THROW(load_trace("ddmtrace 3\n"), TFluxError);
  EXPECT_THROW(load_trace("ddmtrace 1\ne 0 teleport 1 1 0\n"),
               TFluxError);
  EXPECT_THROW(load_trace("ddmtrace 1\ne 0 dispatch\n"), TFluxError);
  EXPECT_THROW(load_trace("ddmtrace 1\nconfig kernels zero\n"),
               TFluxError);
  // A range-update record requires its third operand.
  EXPECT_THROW(load_trace("ddmtrace 2\ne 0 range-update 0 0 1\n"),
               TFluxError);
}

TEST(DdmTraceTest, VersionOneTracesStillLoad) {
  const ExecTrace t = load_trace(
      "ddmtrace 1\n"
      "program legacy\n"
      "e 0 dispatch 1 1 0\n"
      "e 1 update 0 0 1\n");
  EXPECT_EQ(t.program, "legacy");
  EXPECT_FALSE(t.truncated);
  ASSERT_EQ(t.records.size(), 2u);
  EXPECT_EQ(t.records[1].event, TraceEvent::kUpdate);
  EXPECT_EQ(t.records[1].c, 0u);
}

TEST(DdmTraceTest, RangeUpdateAndTruncatedRoundTrip) {
  ExecTrace t;
  t.program = "rng";
  t.truncated = true;
  add(t, TraceEvent::kRangeUpdate, 0, 0, 1, 5);
  add(t, TraceEvent::kUpdate, 0, 2, 4);
  const std::string text = save_trace(t);
  EXPECT_EQ(text.rfind("ddmtrace 2", 0), 0u);
  EXPECT_NE(text.find("truncated 1"), std::string::npos);
  EXPECT_NE(text.find("range-update 0 0 1 5"), std::string::npos);
  const ExecTrace back = load_trace(text);
  EXPECT_TRUE(back.truncated);
  ASSERT_EQ(back.records.size(), 2u);
  EXPECT_EQ(back.records[0].event, TraceEvent::kRangeUpdate);
  EXPECT_EQ(back.records[0].a, 0u);
  EXPECT_EQ(back.records[0].b, 1u);
  EXPECT_EQ(back.records[0].c, 5u);
  EXPECT_EQ(back.records[1].event, TraceEvent::kUpdate);
  EXPECT_EQ(back.records[1].c, 0u);
}

TEST(CheckTest, FaithfulTraceIsClean) {
  const Program p = make_diamond();
  const CheckReport report = check_trace(p, diamond_trace());
  EXPECT_TRUE(report.clean()) << report.to_string(p);
  EXPECT_EQ(report.records_checked, 15u);
  EXPECT_FALSE(report.races_skipped);
  EXPECT_FALSE(report.truncated);
}

TEST(CheckTest, FlagsUndeclaredArc) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records[6].a = 2;  // the a->b update claims to come from c
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kUndeclaredArc));
  // ...and the declared a->b arc never fired.
  EXPECT_TRUE(has(report, CheckDiag::kMissingUpdate));
}

TEST(CheckTest, FlagsDuplicateUpdateAndNegativeReadyCount) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  TraceRecord dup = t.records[6];  // a -> b fires again
  dup.seq = t.records.size();
  t.records.push_back(dup);
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kDuplicateUpdate));
  EXPECT_TRUE(has(report, CheckDiag::kNegativeReadyCount));
}

/// One block: p (id 0) --arcs--> c1 (id 1) and c2 (id 2), consecutive
/// consumers. Inlet = 3, outlet = 4 (RC 2: sinks c1, c2).
Program make_fanout() {
  ProgramBuilder b("fanout");
  const BlockId b0 = b.add_block();
  const ThreadId p = b.add_thread(b0, "p", {});
  const ThreadId c1 = b.add_thread(b0, "c1", {});
  b.add_thread(b0, "c2", {});
  b.add_arc_range(p, c1, c1 + 1);
  return b.build(BuildOptions{.num_kernels = 1});
}

/// A faithful coalesced execution of make_fanout(): p's completion is
/// one range-update covering consumers [1, 2].
ExecTrace fanout_trace() {
  ExecTrace t;
  t.program = "fanout";
  t.kernels = 1;
  t.groups = 1;
  t.pipelined = false;
  add(t, TraceEvent::kDispatch, 1, 3, 0);        // inlet
  add(t, TraceEvent::kComplete, 0, 3, 0);
  add(t, TraceEvent::kInletLoad, 1, 0, 0);
  add(t, TraceEvent::kDispatch, 1, 0, 0);        // root p
  add(t, TraceEvent::kComplete, 0, 0, 0);
  add(t, TraceEvent::kRangeUpdate, 0, 0, 1, 2);  // p -> [c1, c2]
  add(t, TraceEvent::kDispatch, 1, 1, 0);
  add(t, TraceEvent::kDispatch, 1, 2, 0);
  add(t, TraceEvent::kComplete, 0, 1, 0);
  add(t, TraceEvent::kUpdate, 0, 1, 4);
  add(t, TraceEvent::kComplete, 0, 2, 0);
  add(t, TraceEvent::kUpdate, 0, 2, 4);
  add(t, TraceEvent::kDispatch, 1, 4, 0);        // outlet
  add(t, TraceEvent::kComplete, 0, 4, 0);
  add(t, TraceEvent::kOutletDone, 0, 0, 0);
  return t;
}

TEST(CheckTest, FaithfulRangeUpdateTraceIsClean) {
  const Program p = make_fanout();
  const CheckReport report = check_trace(p, fanout_trace());
  EXPECT_TRUE(report.clean()) << report.to_string(p);
}

TEST(CheckTest, RangeUpdateExpandsToDeclaredUnitArcs) {
  // Widening the range past the declared consumers must surface the
  // exact unit-arc findings: an undeclared arc (0 -> 3 is the inlet)
  // and a malformed end past the id space.
  const Program p = make_fanout();
  ExecTrace t = fanout_trace();
  t.records[5].c = 3;  // covers [1, 3]: 0->3 was never declared
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kUndeclaredArc));
}

TEST(CheckTest, FlagsRangeUpdateWithHiBelowLo) {
  const Program p = make_fanout();
  ExecTrace t = fanout_trace();
  std::swap(t.records[5].b, t.records[5].c);  // [2, 1]
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kMalformedRecord));
}

TEST(CheckTest, RangeUpdateReplayedTwiceGoesNegative) {
  const Program p = make_fanout();
  ExecTrace t = fanout_trace();
  TraceRecord dup = t.records[5];
  dup.seq = t.records.size();
  t.records.push_back(dup);
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kDuplicateUpdate));
  EXPECT_TRUE(has(report, CheckDiag::kNegativeReadyCount));
}

TEST(CheckTest, TruncatedTraceGetsOneFindingAndSkipsCompleteness) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records.resize(8);  // cut mid-run: b dispatched, never completed
  t.truncated = true;
  const CheckReport report = check_trace(p, t);
  ASSERT_EQ(report.findings.size(), 1u) << report.to_string(p);
  EXPECT_EQ(report.findings[0].code, CheckDiag::kTruncatedTrace);
  EXPECT_FALSE(has(report, CheckDiag::kMissingExecution));
  EXPECT_FALSE(has(report, CheckDiag::kMissingUpdate));
}

TEST(CheckTest, TruncatedPrefixStillFlagsProtocolViolations) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records.resize(8);
  t.records[6].a = 2;  // the a->b update claims to come from c
  t.truncated = true;
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kUndeclaredArc));
  EXPECT_TRUE(has(report, CheckDiag::kTruncatedTrace));
  EXPECT_FALSE(has(report, CheckDiag::kMissingUpdate));
}

TEST(CheckTest, FlagsPrematureDispatch) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  // b's dispatch (seq 7) reordered before the a->b update (seq 6).
  std::swap(t.records[6].seq, t.records[7].seq);
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kPrematureDispatch));
}

TEST(CheckTest, FlagsDoubleDispatch) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  TraceRecord dup = t.records[7];  // b dispatched twice
  dup.seq = t.records.size();
  t.records.push_back(dup);
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kDoubleDispatch));
}

TEST(CheckTest, FlagsDoubleExecution) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  TraceRecord dup = t.records[10];  // b completed twice
  dup.seq = t.records.size();
  t.records.push_back(dup);
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kDoubleExecution));
}

TEST(CheckTest, FlagsExecutionWithoutDispatch) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records.erase(t.records.begin() + 7);  // drop b's dispatch
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kExecutionWithoutDispatch));
}

TEST(CheckTest, FlagsMissingExecution) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records.resize(10);  // stop before b completed
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kMissingExecution));
}

TEST(CheckTest, FlagsMissingUpdate) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records.erase(t.records.begin() + 11);  // drop the b->outlet update
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kMissingUpdate));
}

TEST(CheckTest, FlagsEarlyOutletDoneAsBlockLifecycle) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  // The block retires (seq of outlet-done moved) before b completes.
  t.records[14].seq = 9;
  t.records[9].seq = 14;
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kBlockLifecycle));
}

TEST(CheckTest, FlagsDuplicateOutletDoneAsBlockLifecycle) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  TraceRecord dup = t.records[14];
  dup.seq = t.records.size();
  t.records.push_back(dup);
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kBlockLifecycle));
}

TEST(CheckTest, FlagsUnknownThreadAsMalformed) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records[6].b = 99;  // update aimed at a thread that does not exist
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(has(report, CheckDiag::kMalformedRecord));
}

TEST(CheckTest, FlagsFootprintRace) {
  // racy: a=0 (writer), b=1 (reader), no arc; inlet=2, outlet=3 (RC 2).
  const Program p = make_racy();
  ExecTrace t;
  t.pipelined = false;
  add(t, TraceEvent::kDispatch, 1, 2, 0);
  add(t, TraceEvent::kComplete, 0, 2, 0);
  add(t, TraceEvent::kInletLoad, 1, 0, 0);
  add(t, TraceEvent::kDispatch, 1, 0, 0);
  add(t, TraceEvent::kDispatch, 1, 1, 0);
  add(t, TraceEvent::kComplete, 0, 0, 0);
  add(t, TraceEvent::kUpdate, 0, 0, 3);
  add(t, TraceEvent::kComplete, 0, 1, 0);
  add(t, TraceEvent::kUpdate, 0, 1, 3);
  add(t, TraceEvent::kDispatch, 1, 3, 0);
  add(t, TraceEvent::kComplete, 0, 3, 0);
  add(t, TraceEvent::kOutletDone, 0, 0, 0);
  const CheckReport report = check_trace(p, t);
  ASSERT_EQ(report.findings.size(), 1u) << report.to_string(p);
  EXPECT_EQ(report.findings[0].code, CheckDiag::kFootprintRace);
  // The race pair is reported once, with both threads named.
  EXPECT_EQ(report.findings[0].thread, 0u);
  EXPECT_EQ(report.findings[0].other, 1u);

  CheckOptions no_races;
  no_races.check_races = false;
  EXPECT_TRUE(check_trace(p, t, no_races).clean());
}

TEST(CheckTest, ObservedUpdateEdgeOrdersOverlappingFootprints) {
  // Same footprints as FlagsFootprintRace, but the diamond's a->b arc
  // fired - so the overlap is ordered and must NOT be reported.
  const Program p = make_diamond();
  const CheckReport report = check_trace(p, diamond_trace());
  EXPECT_FALSE(has(report, CheckDiag::kFootprintRace));
}

TEST(CheckTest, BlockBarrierOrdersCrossBlockFootprints) {
  // a (block 0) writes what y (block 1, RC 0) reads, with no declared
  // arc between them: the block barrier (y's root dispatch follows
  // block 0's OutletDone) is the only ordering - the checker must
  // credit it and stay silent.
  ProgramBuilder b("barrier");
  const BlockId b0 = b.add_block();
  Footprint fa;
  fa.write(0x1000, 64);
  b.add_thread(b0, "a", {}, std::move(fa));
  const BlockId b1 = b.add_block();
  Footprint fy;
  fy.read(0x1000, 64);
  b.add_thread(b1, "y", {}, std::move(fy));
  const Program p = b.build(BuildOptions{.num_kernels = 1});
  // Ids: a=0, y=1, inlet0=2, outlet0=3, inlet1=4, outlet1=5.

  ExecTrace t;
  t.pipelined = false;
  add(t, TraceEvent::kDispatch, 1, 2, 0);
  add(t, TraceEvent::kComplete, 0, 2, 0);
  add(t, TraceEvent::kInletLoad, 1, 0, 0);
  add(t, TraceEvent::kDispatch, 1, 0, 0);
  add(t, TraceEvent::kComplete, 0, 0, 0);
  add(t, TraceEvent::kUpdate, 0, 0, 3);
  add(t, TraceEvent::kDispatch, 1, 3, 0);
  add(t, TraceEvent::kComplete, 0, 3, 0);
  add(t, TraceEvent::kOutletDone, 0, 0, 0);
  add(t, TraceEvent::kDispatch, 1, 4, 0);
  add(t, TraceEvent::kComplete, 0, 4, 1);
  add(t, TraceEvent::kInletLoad, 1, 1, 0);
  add(t, TraceEvent::kDispatch, 1, 1, 0);
  add(t, TraceEvent::kComplete, 0, 1, 1);
  add(t, TraceEvent::kUpdate, 0, 1, 5);
  add(t, TraceEvent::kDispatch, 1, 5, 0);
  add(t, TraceEvent::kComplete, 0, 5, 1);
  add(t, TraceEvent::kOutletDone, 0, 1, 0);
  const CheckReport report = check_trace(p, t);
  EXPECT_TRUE(report.clean()) << report.to_string(p);
}

TEST(CheckTest, MaxFindingsTruncates) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records.resize(5);  // almost nothing executed: many findings
  CheckOptions options;
  options.max_findings = 2;
  const CheckReport report = check_trace(p, t, options);
  EXPECT_EQ(report.findings.size(), 2u);
  EXPECT_TRUE(report.truncated);
}

TEST(CheckTest, RacePassSkippedAboveThreadLimit) {
  const Program p = make_racy();
  ExecTrace t;
  CheckOptions options;
  options.race_check_max_threads = 1;
  const CheckReport report = check_trace(p, t, options);
  EXPECT_TRUE(report.races_skipped);
}

TEST(CheckTest, FindingToStringNamesCodeAndThread) {
  const Program p = make_diamond();
  ExecTrace t = diamond_trace();
  t.records[6].a = 2;
  const CheckReport report = check_trace(p, t);
  ASSERT_FALSE(report.findings.empty());
  const std::string s = report.findings[0].to_string(p);
  EXPECT_NE(s.find("[undeclared-arc]"), std::string::npos) << s;
  EXPECT_NE(s.find("thread 2 'c'"), std::string::npos) << s;
  const std::string all = report.to_string(p);
  EXPECT_NE(all.find("ddmcheck:"), std::string::npos);
}

}  // namespace
}  // namespace tflux::core
