// Shared spec-parsing helpers (core/spec.h) and the guard spec that
// now rides on them: the same strict digit rules must hold everywhere
// a CLI accepts `key:value` numbers.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "core/guard.h"
#include "core/spec.h"

namespace tflux::core {
namespace {

TEST(SpecTest, ParsesPlainNumbers) {
  std::uint64_t out = 7;
  EXPECT_TRUE(parse_spec_uint("0", 100, /*min_one=*/false, out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(parse_spec_uint("42", 100, /*min_one=*/false, out));
  EXPECT_EQ(out, 42u);
  EXPECT_TRUE(parse_spec_uint("100", 100, /*min_one=*/false, out));
  EXPECT_EQ(out, 100u);
}

TEST(SpecTest, RejectsNonDigitsAndEmpty) {
  std::uint64_t out = 7;
  EXPECT_FALSE(parse_spec_uint("", 100, /*min_one=*/false, out));
  EXPECT_FALSE(parse_spec_uint("4x", 100, /*min_one=*/false, out));
  EXPECT_FALSE(parse_spec_uint("-1", 100, /*min_one=*/false, out));
  EXPECT_FALSE(parse_spec_uint(" 4", 100, /*min_one=*/false, out));
  EXPECT_FALSE(parse_spec_uint("0x10", 100, /*min_one=*/false, out));
  EXPECT_EQ(out, 7u);  // out untouched on failure
}

TEST(SpecTest, RejectsOverflow) {
  std::uint64_t out = 7;
  EXPECT_FALSE(parse_spec_uint("101", 100, /*min_one=*/false, out));
  // Past uint64 range entirely: must not wrap.
  EXPECT_FALSE(parse_spec_uint("99999999999999999999999", UINT64_MAX,
                               /*min_one=*/false, out));
  EXPECT_EQ(out, 7u);
}

TEST(SpecTest, MinOneRejectsZero) {
  std::uint64_t out = 7;
  EXPECT_FALSE(parse_spec_uint("0", 100, /*min_one=*/true, out));
  EXPECT_EQ(out, 7u);
  EXPECT_TRUE(parse_spec_uint("1", 100, /*min_one=*/true, out));
  EXPECT_EQ(out, 1u);
}

TEST(SpecTest, SplitsAtFirstColon) {
  std::string key, value;
  ASSERT_TRUE(split_spec("sampled:8", key, value));
  EXPECT_EQ(key, "sampled");
  EXPECT_EQ(value, "8");

  ASSERT_TRUE(split_spec("a:b:c", key, value));
  EXPECT_EQ(key, "a");
  EXPECT_EQ(value, "b:c");

  ASSERT_TRUE(split_spec("sampled:", key, value));
  EXPECT_EQ(key, "sampled");
  EXPECT_EQ(value, "");
}

TEST(SpecTest, SplitReportsMissingColon) {
  std::string key = "k", value = "v";
  EXPECT_FALSE(split_spec("full", key, value));
  EXPECT_EQ(key, "k");  // untouched on failure
  EXPECT_EQ(value, "v");
}

TEST(SpecTest, GuardSpecAcceptsValidPeriods) {
  GuardOptions options;
  ASSERT_TRUE(parse_guard_spec("sampled:3", options));
  EXPECT_EQ(options.mode, GuardMode::kSampled);
  EXPECT_EQ(options.sample_period, 3u);

  ASSERT_TRUE(parse_guard_spec("sampled", options));
  EXPECT_EQ(options.sample_period, 8u);  // documented default

  ASSERT_TRUE(parse_guard_spec("full", options));
  EXPECT_EQ(options.mode, GuardMode::kFull);
  ASSERT_TRUE(parse_guard_spec("off", options));
  EXPECT_EQ(options.mode, GuardMode::kOff);
}

TEST(SpecTest, GuardSpecRejectsDegeneratePeriods) {
  // A period of 0 would mean `block % 0` at the first sample point;
  // the spec parser must reject it (and every other malformed value)
  // up front rather than rely on downstream clamping.
  GuardOptions options;
  EXPECT_FALSE(parse_guard_spec("sampled:0", options));
  EXPECT_FALSE(parse_guard_spec("sampled:", options));
  EXPECT_FALSE(parse_guard_spec("sampled:x", options));
  EXPECT_FALSE(parse_guard_spec("sampled:-1", options));
  EXPECT_FALSE(parse_guard_spec("sampled:8 ", options));
  EXPECT_FALSE(parse_guard_spec("", options));
  EXPECT_FALSE(parse_guard_spec("deep", options));
}

}  // namespace
}  // namespace tflux::core
