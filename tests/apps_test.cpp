// Benchmark-suite tests: algorithmic correctness of each workload,
// plus cross-platform validation - the same DDM program must produce
// sequential-identical results on the ReferenceScheduler, the native
// std::thread runtime, and the simulated machine.
#include "apps/suite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numbers>
#include <tuple>

#include "apps/fft.h"
#include "apps/mmult.h"
#include "apps/qsort.h"
#include "apps/susan.h"
#include "apps/susan_pipeline.h"
#include "apps/trapez.h"
#include "core/scheduler.h"
#include "machine/config.h"
#include "machine/machine.h"
#include "runtime/runtime.h"

namespace tflux::apps {
namespace {

// ---------------------------------------------------------------------------
// Algorithmic correctness.
// ---------------------------------------------------------------------------

TEST(TrapezTest, SequentialConvergesToPi) {
  const double v = trapez_sequential(TrapezInput{19});
  EXPECT_NEAR(v, std::numbers::pi, 1e-6);
}

TEST(TrapezTest, InputSizesMatchTable1) {
  EXPECT_EQ(trapez_input(SizeClass::kSmall).log2_intervals, 19u);
  EXPECT_EQ(trapez_input(SizeClass::kMedium).log2_intervals, 21u);
  EXPECT_EQ(trapez_input(SizeClass::kLarge).log2_intervals, 23u);
}

TEST(MmultTest, SequentialMatchesNaiveTriple) {
  const MmultInput in{8};
  const auto c = mmult_sequential(in);
  ASSERT_EQ(c.size(), 64u);
  // Recompute one element independently via the same deterministic
  // generators used in the app.
  // (Spot-check: C must not be all zeros and must be finite.)
  double norm = 0;
  for (double v : c) {
    EXPECT_TRUE(std::isfinite(v));
    norm += v * v;
  }
  EXPECT_GT(norm, 0.0);
}

TEST(MmultTest, SizesDependOnPlatform) {
  EXPECT_EQ(mmult_input(SizeClass::kLarge, Platform::kSimulated).n, 256u);
  EXPECT_EQ(mmult_input(SizeClass::kLarge, Platform::kNative).n, 1024u);
  EXPECT_EQ(mmult_input(SizeClass::kSmall, Platform::kCell).n, 256u);
}

TEST(QsortTest, SequentialSortsDeterministicInput) {
  const auto sorted = qsort_sequential(QsortInput{5000});
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  EXPECT_EQ(sorted.size(), 5000u);
}

TEST(QsortTest, CellSizesAreLocalStoreBound) {
  EXPECT_EQ(qsort_input(SizeClass::kLarge, Platform::kNative).n, 50000u);
  EXPECT_EQ(qsort_input(SizeClass::kLarge, Platform::kCell).n, 12000u);
}

TEST(SusanTest, SmoothingReducesNoiseEnergy) {
  const SusanInput in{64, 48};
  const auto out = susan_sequential(in);
  ASSERT_EQ(out.size(), in.pixels());
  // High-frequency energy (sum of squared horizontal deltas) must drop
  // versus the noisy input; rebuild the input via a tiny program.
  // The smoothed image should not be constant either.
  const auto minmax = std::minmax_element(out.begin(), out.end());
  EXPECT_LT(*minmax.first, *minmax.second);
}

TEST(FftTest, Radix2MatchesDirectDft) {
  constexpr std::uint32_t n = 16;
  std::vector<std::complex<double>> data(n), ref(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    data[i] = {std::cos(0.3 * i), std::sin(0.7 * i)};
  }
  for (std::uint32_t k = 0; k < n; ++k) {
    std::complex<double> sum = 0;
    for (std::uint32_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi * k * t / n;
      sum += data[t] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    ref[k] = sum;
  }
  fft_radix2(data.data(), n, 1);
  for (std::uint32_t k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(data[k] - ref[k]), 0.0, 1e-9) << "bin " << k;
  }
}

TEST(FftTest, StridedColumnTransformMatchesGathered) {
  constexpr std::uint32_t n = 8;
  std::vector<std::complex<double>> mat(n * n);
  for (std::uint32_t i = 0; i < n * n; ++i) {
    mat[i] = {static_cast<double>(i % 7), static_cast<double>(i % 5)};
  }
  // Column 3 via stride...
  auto strided = mat;
  fft_radix2(strided.data() + 3, n, n);
  // ...vs gather/transform/scatter.
  std::vector<std::complex<double>> col(n);
  for (std::uint32_t r = 0; r < n; ++r) col[r] = mat[r * n + 3];
  fft_radix2(col.data(), n, 1);
  for (std::uint32_t r = 0; r < n; ++r) {
    EXPECT_NEAR(std::abs(strided[r * n + 3] - col[r]), 0.0, 1e-12);
  }
}

TEST(SusanPipeTest, SequentialCornerMapIsBinaryAndStable) {
  const SusanPipeInput in{96, 64, 8, 2};
  const auto a = susan_pipe_sequential(in);
  const auto b = susan_pipe_sequential(in);
  ASSERT_EQ(a.size(), in.pixels());
  EXPECT_EQ(a, b);  // frame pipeline is deterministic
  std::size_t nonbinary = 0;
  for (const std::uint8_t v : a) {
    if (v != 0 && v != 255) ++nonbinary;
  }
  EXPECT_EQ(nonbinary, 0u);
}

TEST(SusanPipeTest, StagesTileAtMisalignedGranularities) {
  // The structural point of the workload: T -> 2T -> T strip counts,
  // linked by explicit cross-block data arcs.
  DdmParams params;
  params.num_kernels = 4;
  const SusanPipeInput in{64, 48, 4, 2};
  AppRun run = build_susan_pipeline(in, params);
  // Per frame: init T + smooth T + edge 2T + corner T app threads.
  EXPECT_EQ(run.program.num_app_threads(), in.frames * 5 * in.strips);
  EXPECT_FALSE(run.program.cross_block_arcs().empty());
}

// ---------------------------------------------------------------------------
// Cross-platform validation sweep: every app, on every executor,
// produces results identical to its sequential reference.
// ---------------------------------------------------------------------------

enum class Executor { kReference, kNativeRuntime, kSimulatedMachine };

using ValidateParam = std::tuple<AppKind, Executor>;

class AppValidationTest : public ::testing::TestWithParam<ValidateParam> {};

TEST_P(AppValidationTest, ResultsMatchSequential) {
  const auto [kind, executor] = GetParam();
  DdmParams params;
  params.num_kernels = 4;
  params.unroll = 8;
  params.tsu_capacity = 64;  // force multi-block programs
  // Small sizes keep the functional work cheap.
  AppRun run = build_app(kind, SizeClass::kSmall, Platform::kSimulated,
                         params);

  switch (executor) {
    case Executor::kReference: {
      core::ReferenceScheduler sched(run.program, params.num_kernels);
      sched.run();
      break;
    }
    case Executor::kNativeRuntime: {
      runtime::Runtime rt(run.program,
                          runtime::RuntimeOptions{.num_kernels = 4});
      rt.run();
      break;
    }
    case Executor::kSimulatedMachine: {
      machine::Machine m(machine::bagle_sparc(4), run.program);
      m.run();
      break;
    }
  }
  EXPECT_TRUE(run.validate()) << run.name << " produced wrong results";
}

INSTANTIATE_TEST_SUITE_P(
    AllAppsAllExecutors, AppValidationTest,
    ::testing::Combine(::testing::Values(AppKind::kTrapez, AppKind::kMmult,
                                         AppKind::kQsort, AppKind::kSusan,
                                         AppKind::kFft, AppKind::kSusanPipe),
                       ::testing::Values(Executor::kReference,
                                         Executor::kNativeRuntime,
                                         Executor::kSimulatedMachine)));

// Validation must also hold at other kernel counts / unrolls.
using ShapeParam = std::tuple<std::uint16_t, std::uint32_t>;
class AppShapeTest : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(AppShapeTest, QsortAndFftSurviveShapeChanges) {
  const auto [kernels, unroll] = GetParam();
  DdmParams params;
  params.num_kernels = kernels;
  params.unroll = unroll;
  for (AppKind kind : {AppKind::kQsort, AppKind::kFft}) {
    AppRun run =
        build_app(kind, SizeClass::kSmall, Platform::kSimulated, params);
    core::ReferenceScheduler sched(run.program, kernels);
    sched.run();
    EXPECT_TRUE(run.validate()) << to_string(kind) << " kernels=" << kernels
                                << " unroll=" << unroll;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AppShapeTest,
    ::testing::Combine(::testing::Values<std::uint16_t>(1, 2, 6, 27),
                       ::testing::Values(1u, 4u, 64u)));

TEST(SuiteTest, Table1CatalogCoversAllApps) {
  const auto rows = table1_catalog();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].app, AppKind::kTrapez);
  EXPECT_EQ(rows[4].app, AppKind::kFft);
  EXPECT_EQ(rows[5].app, AppKind::kSusanPipe);
  EXPECT_EQ(cell_apps().size(), 4u);   // no FFT on Cell (Figure 7)
  EXPECT_EQ(table1_apps().size(), 5u); // the paper's figure apps
  EXPECT_EQ(all_apps().size(), 6u);    // ... plus SUSANPIPE
}

TEST(SuiteTest, SequentialPlansNonEmpty) {
  DdmParams params;
  params.num_kernels = 2;
  for (AppKind kind : all_apps()) {
    AppRun run =
        build_app(kind, SizeClass::kSmall, Platform::kSimulated, params);
    EXPECT_FALSE(run.sequential_plan.empty()) << to_string(kind);
  }
}

}  // namespace
}  // namespace tflux::apps
