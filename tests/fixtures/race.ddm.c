// Deliberately broken DDM program: threads 1 and 2 are unordered (no
// depends clause) yet their writes() footprints overlap at [4224,4352).
// ddmcpp's lint pass must refuse to generate code for this file; the
// ddmcpp_cli_lint_rejects_race ctest entry asserts exactly that.
#pragma ddm startprogram kernels 2 name racy

#pragma ddm thread 1 cycles(100) writes(4096:256)
{ /* writes [4096, 4352) */ }
#pragma ddm endthread

#pragma ddm thread 2 cycles(100) writes(4224:256)
{ /* writes [4224, 4480) - overlaps thread 1, no ordering arc */ }
#pragma ddm endthread

#pragma ddm endprogram
