// Resident-executor core vocabulary (core/executor.h): the program
// registry, the static tenant partition plan, the admission capacity
// check shared with ddmlint --tenant-capacity, and the latency /
// fairness accounting the serving bench reports. Everything here is
// thread-free; the threaded executor built on top is covered by
// runtime_executor_test.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/error.h"
#include "core/executor.h"
#include "core/program.h"

namespace tflux {
namespace {

using core::LatencyRecorder;
using core::LatencySummary;
using core::ProgramRegistry;
using core::TenantPartition;
using core::TenantShare;

/// A minimal one-block program homed on kernels 0..width-1.
core::Program make_program(std::uint16_t width, const std::string& name) {
  core::ProgramBuilder builder(name);
  const core::BlockId blk = builder.add_block();
  std::vector<core::ThreadId> ids;
  for (std::uint16_t k = 0; k < width; ++k) {
    ids.push_back(builder.add_thread(blk, "t" + std::to_string(k), {}, {},
                                     static_cast<core::KernelId>(k)));
  }
  for (std::size_t i = 1; i < ids.size(); ++i) {
    builder.add_arc(ids[0], ids[i]);
  }
  return builder.build();
}

TEST(ProgramRegistry, RegisterOnceRunMany) {
  ProgramRegistry registry;
  const core::Program a = make_program(2, "a");
  const core::Program b = make_program(4, "b");
  int resets = 0;
  const core::ProgramHandle ha =
      registry.add(a, nullptr, [&resets] { ++resets; }, "prog-a");
  const core::ProgramHandle hb = registry.add(b, nullptr, nullptr, "prog-b");
  EXPECT_NE(ha, hb);
  EXPECT_EQ(registry.size(), 2u);

  const core::RegisteredProgram& ea = registry.get(ha);
  EXPECT_EQ(ea.program, &a);
  EXPECT_EQ(ea.name, "prog-a");
  ASSERT_TRUE(static_cast<bool>(ea.reset));
  ea.reset();
  EXPECT_EQ(resets, 1);
  EXPECT_EQ(registry.get(hb).program, &b);
  EXPECT_FALSE(static_cast<bool>(registry.get(hb).reset));
}

TEST(ProgramRegistry, UnknownHandleThrows) {
  ProgramRegistry registry;
  EXPECT_THROW(registry.get(0), core::TFluxError);
  EXPECT_THROW(registry.get(core::kInvalidProgram), core::TFluxError);
}

TEST(PartitionPlan, ExactCarveUp) {
  const std::vector<TenantPartition> plan = core::make_partition_plan(8, 2);
  ASSERT_EQ(plan.size(), 4u);
  for (std::size_t t = 0; t < plan.size(); ++t) {
    EXPECT_EQ(plan[t].tenant, t);
    EXPECT_EQ(plan[t].base, static_cast<core::KernelId>(2 * t));
    EXPECT_EQ(plan[t].width, 2);
  }
}

TEST(PartitionPlan, TrailingKernelsIdle) {
  // 7 kernels at width 2: three tenants, kernel 6 idles.
  const std::vector<TenantPartition> plan = core::make_partition_plan(7, 2);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[2].base, 4);
}

TEST(PartitionPlan, WholePoolIsOneTenant) {
  const std::vector<TenantPartition> plan = core::make_partition_plan(4, 4);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].base, 0);
  EXPECT_EQ(plan[0].width, 4);
}

TEST(PartitionPlan, InvalidWidthThrows) {
  EXPECT_THROW(core::make_partition_plan(4, 0), core::TFluxError);
  EXPECT_THROW(core::make_partition_plan(4, 5), core::TFluxError);
}

TEST(TenantAdmission, CapacityCheck) {
  const core::Program wide = make_program(4, "wide");
  EXPECT_TRUE(core::tenant_admission_error(wide, 4).empty());
  EXPECT_TRUE(core::tenant_admission_error(wide, 8).empty());
  const std::string err = core::tenant_admission_error(wide, 2);
  EXPECT_NE(err.find("4"), std::string::npos);
  EXPECT_NE(err.find("2"), std::string::npos);
}

TEST(LatencyRecorder, NearestRankPercentiles) {
  LatencyRecorder recorder;
  // 1..100 ms: nearest-rank p50 = 50 ms, p99 = 99 ms, max = 100 ms.
  for (int i = 1; i <= 100; ++i) recorder.add(i * 1e-3);
  const LatencySummary s = recorder.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean_seconds, 50.5e-3, 1e-9);
  EXPECT_NEAR(s.p50_seconds, 50e-3, 1e-9);
  EXPECT_NEAR(s.p90_seconds, 90e-3, 1e-9);
  EXPECT_NEAR(s.p99_seconds, 99e-3, 1e-9);
  EXPECT_NEAR(s.max_seconds, 100e-3, 1e-9);
}

TEST(LatencyRecorder, ResetDropsSamples) {
  LatencyRecorder recorder;
  recorder.add(1.0);
  recorder.reset();
  EXPECT_EQ(recorder.summary().count, 0u);
  recorder.add(2.0);
  const LatencySummary s = recorder.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_NEAR(s.max_seconds, 2.0, 1e-12);
}

TEST(Fairness, RatioOverTenantShares) {
  EXPECT_NEAR(core::fairness_ratio({}), 1.0, 1e-12);
  EXPECT_NEAR(core::fairness_ratio({{0, 5, 0.0}}), 1.0, 1e-12);
  EXPECT_NEAR(core::fairness_ratio({{0, 4, 0.0}, {1, 2, 0.0}}), 2.0, 1e-12);
  // A zero-run tenant counts as one run, not as infinity.
  EXPECT_NEAR(core::fairness_ratio({{0, 3, 0.0}, {1, 0, 0.0}}), 3.0, 1e-12);
}

}  // namespace
}  // namespace tflux
