// Emergency-flush integration: when a run ends abnormally the trace
// prefix must still reach disk marked `truncated`, and feeding it to
// the ddmcheck verifier must yield the single truncated-trace finding
// (not a pile of bogus lifecycle findings). Covers both abnormal
// paths the runtime supports:
//   - an exception unwinding through Runtime::run (the TraceLog
//     destructor flushes), tested in-process;
//   - exit() mid-run (the atexit hook flushes), tested as an exit
//     test in a child process so the parent can inspect the file the
//     dying child left behind.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/builder.h"
#include "core/check.h"
#include "core/ddmtrace.h"
#include "core/error.h"
#include "core/program.h"
#include "runtime/guard_hooks.h"
#include "runtime/runtime.h"

extern "C" int __lsan_is_turned_off() {
  // exit() mid-run deliberately leaks the run's live objects; leak
  // checking the death-test child would report them all.
  return 1;
}

namespace tflux {
namespace {

core::Program make_two_block_program(bool exit_in_second_block) {
  core::ProgramBuilder builder("emergency");
  for (int i = 0; i < 2; ++i) {
    const core::BlockId blk = builder.add_block();
    const std::string s = std::to_string(i);
    core::ThreadBody body = {};
    if (exit_in_second_block && i == 1) {
      body = [](const core::ExecContext&) { std::exit(7); };
    }
    const core::ThreadId a = builder.add_thread(blk, "a" + s, body);
    const core::ThreadId b = builder.add_thread(blk, "b" + s, {});
    builder.add_arc(a, b);
  }
  core::BuildOptions options;
  options.num_kernels = 1;
  return builder.build(options);
}

TEST(RuntimeEmergencyTest, ExceptionUnwindingRunPersistsTruncatedTrace) {
  // Arm a run that throws after the TraceLog exists (fault injection
  // without --guard=full is rejected inside run()); the unwind must
  // hand the emergency writer a trace marked truncated.
  const core::Program program = make_two_block_program(false);
  core::ExecTrace trace;
  core::ExecTrace dumped;
  bool called = false;
  runtime::RuntimeOptions options;
  options.num_kernels = 1;
  options.trace = &trace;
  options.trace_emergency = [&](core::ExecTrace& partial) {
    called = true;
    dumped = partial;
  };
  options.inject_fault.kind =
      runtime::FaultInjection::Kind::kDoublePublish;  // guard off: throws
  runtime::Runtime rt(program, options);
  EXPECT_THROW((void)rt.run(), core::TFluxError);

  ASSERT_TRUE(called);
  EXPECT_TRUE(dumped.truncated);
  EXPECT_EQ(dumped.program, program.name());

  const core::CheckReport report = core::check_trace(program, dumped);
  ASSERT_EQ(report.findings.size(), 1u) << report.to_string(program);
  EXPECT_EQ(report.findings[0].code, core::FindingCode::kTruncatedTrace);
}

TEST(RuntimeEmergencyTest, SaveLoadRoundTripKeepsTheTruncatedMark) {
  core::ExecTrace trace;
  trace.program = "emergency";
  trace.truncated = true;
  core::TraceRecord r{};
  r.seq = 1;
  r.event = core::TraceEvent::kDispatch;
  r.a = 0;
  r.b = 0;
  trace.records.push_back(r);
  const core::ExecTrace loaded = core::load_trace(core::save_trace(trace));
  EXPECT_TRUE(loaded.truncated);
  ASSERT_EQ(loaded.records.size(), 1u);
  EXPECT_EQ(loaded.records[0].event, core::TraceEvent::kDispatch);
}

// The child half of the exit test: run until a second-block DThread
// calls exit(7). The atexit hook drains the trace lanes and the
// emergency writer persists them to `path`.
void run_until_exit(const std::string& path) {
  const core::Program program = make_two_block_program(true);
  static core::ExecTrace trace;  // static: outlives the exit() unwind
  runtime::RuntimeOptions options;
  options.num_kernels = 1;
  options.trace = &trace;
  options.trace_emergency = [path](core::ExecTrace& partial) {
    std::ofstream out(path);
    out << core::save_trace(partial);
  };
  runtime::Runtime rt(program, options);
  (void)rt.run();  // never returns; exit(7) fires mid-block-1
}

TEST(RuntimeEmergencyExitTest, ExitMidRunLeavesACheckableTruncatedTrace) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "emergency_exit.ddmtrace";
  std::remove(path.c_str());
  EXPECT_EXIT(run_until_exit(path), ::testing::ExitedWithCode(7), "");

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "child did not persist " << path;
  std::ostringstream text;
  text << in.rdbuf();
  const core::ExecTrace dumped = core::load_trace(text.str());
  EXPECT_TRUE(dumped.truncated);
  EXPECT_FALSE(dumped.records.empty());

  // tflux_check's verdict on the prefix: the truncated-trace
  // diagnostic - block 0 completed, block 1 stopped mid-flight, and
  // none of that may masquerade as a lifecycle violation.
  const core::Program program = make_two_block_program(true);
  const core::CheckReport report = core::check_trace(program, dumped);
  bool truncated_reported = false;
  for (const core::CheckFinding& f : report.findings) {
    if (f.code == core::FindingCode::kTruncatedTrace) {
      truncated_reported = true;
    } else {
      ADD_FAILURE() << "unexpected finding: " << f.to_string(program);
    }
  }
  EXPECT_TRUE(truncated_reported) << report.to_string(program);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tflux
