// Tests for execution tracing and its Chrome-trace export, including
// the Machine integration.
#include "sim/trace.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "machine/config.h"
#include "machine/machine.h"

namespace tflux::sim {
namespace {

TEST(TraceTest, RecordsSpans) {
  Trace trace;
  trace.add_span(0, 10, 20, "work");
  trace.add_span(1, 15, 40, "other");
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.spans()[0].begin, 10u);
  EXPECT_EQ(trace.spans()[1].lane, 1u);
}

TEST(TraceTest, ClampsInvertedSpan) {
  Trace trace;
  trace.add_span(0, 30, 20, "oops");
  EXPECT_EQ(trace.spans()[0].end, 30u);
}

TEST(TraceTest, ChromeJsonShape) {
  Trace trace;
  trace.set_lane_name(0, "kernel 0");
  trace.add_span(0, 5, 9, "t\"x\"");  // name needs escaping
  const std::string json = trace.to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // lane meta
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // span
  EXPECT_NE(json.find("\"ts\":5"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);
  EXPECT_NE(json.find("t\\\"x\\\""), std::string::npos);  // escaped
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line, valid JSON
}

TEST(TraceTest, MachineProducesCoherentTrace) {
  core::ProgramBuilder b;
  const core::BlockId blk = b.add_block();
  core::ThreadId prev = core::kInvalidThread;
  for (int i = 0; i < 6; ++i) {
    core::Footprint fp;
    fp.compute(1000);
    const core::ThreadId t =
        b.add_thread(blk, "step" + std::to_string(i), {}, std::move(fp));
    if (i > 0) b.add_arc(prev, t);
    prev = t;
  }
  core::Program p = b.build(core::BuildOptions{.num_kernels = 2});

  Trace trace;
  machine::Machine m(machine::bagle_sparc(2), p);
  m.attach_trace(&trace);
  const machine::MachineStats st = m.run();

  // 6 app + inlet + outlet spans on kernel lanes, plus TSU spans.
  std::size_t kernel_spans = 0, tsu_spans = 0;
  for (const TraceSpan& s : trace.spans()) {
    EXPECT_LE(s.end, st.total_cycles + 1000);
    if (s.lane < 2) {
      ++kernel_spans;
    } else {
      ++tsu_spans;
      EXPECT_EQ(s.name.rfind("tsu:", 0), 0u);
    }
  }
  EXPECT_EQ(kernel_spans, 8u);
  EXPECT_GE(tsu_spans, 8u);

  // The chain serializes: spans on the same dependency chain must not
  // overlap (each step starts after the previous completes).
  Cycles last_end = 0;
  for (const TraceSpan& s : trace.spans()) {
    if (s.lane >= 2 || s.name.rfind("step", 0) != 0) continue;
    EXPECT_GE(s.begin, last_end);
    last_end = s.end;
  }
}

}  // namespace
}  // namespace tflux::sim
