// Live tracing tests: run real benchmarks on TFluxSoft with
// RuntimeOptions::trace set, reconcile the record counts against the
// runtime's own statistics, and feed every trace through the ddmcheck
// verifier (which must come back clean - the runtime is the reference
// implementation of its own protocol).
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

#include "apps/suite.h"
#include "core/check.h"
#include "core/ddmtrace.h"
#include "runtime/runtime.h"
#include "runtime/trace_log.h"

namespace tflux {
namespace {

std::uint64_t count(const core::ExecTrace& trace, core::TraceEvent event) {
  std::uint64_t n = 0;
  for (const core::TraceRecord& r : trace.records) {
    if (r.event == event) ++n;
  }
  return n;
}

struct Config {
  apps::AppKind app;
  core::PolicyKind policy;
  std::uint16_t groups;
};

class RuntimeTraceTest : public ::testing::TestWithParam<Config> {};

TEST_P(RuntimeTraceTest, TraceReconcilesWithStatsAndChecksClean) {
  const Config& cfg = GetParam();
  apps::DdmParams params;
  params.num_kernels = 4;
  params.unroll = 8;
  params.tsu_capacity = 64;  // force several DDM Blocks
  apps::AppRun run = apps::build_app(cfg.app, apps::SizeClass::kSmall,
                                     apps::Platform::kNative, params);

  core::ExecTrace trace;
  runtime::RuntimeOptions options;
  options.num_kernels = params.num_kernels;
  options.policy = cfg.policy;
  options.tsu_groups = cfg.groups;
  options.trace = &trace;
  runtime::Runtime rt(run.program, options);
  const runtime::RuntimeStats stats = rt.run();

  EXPECT_TRUE(run.validate());
  EXPECT_EQ(trace.kernels, params.num_kernels);
  EXPECT_EQ(trace.groups, cfg.groups);

  // Every dispatch, execution and update the runtime counted must have
  // left exactly one record (and vice versa).
  std::uint64_t executed = 0;
  std::uint64_t updates = 0;
  for (const runtime::KernelStats& k : stats.kernels) {
    executed += k.threads_executed;
    updates += k.updates_published;
  }
  EXPECT_EQ(count(trace, core::TraceEvent::kComplete), executed);
  EXPECT_EQ(count(trace, core::TraceEvent::kDispatch),
            stats.emulator.dispatches);
  // Coalesced publishing records one range-update per consecutive
  // consumer run; each covers hi - lo + 1 of the published updates.
  std::uint64_t traced_updates = count(trace, core::TraceEvent::kUpdate);
  for (const core::TraceRecord& r : trace.records) {
    if (r.event == core::TraceEvent::kRangeUpdate) {
      traced_updates += r.c - r.b + 1;
    }
  }
  EXPECT_EQ(traced_updates, updates);
  EXPECT_EQ(count(trace, core::TraceEvent::kOutletDone),
            run.program.num_blocks());

  const core::CheckReport report = check_trace(run.program, trace);
  EXPECT_TRUE(report.clean()) << report.to_string(run.program);
  EXPECT_EQ(report.records_checked, trace.records.size());
}

INSTANTIATE_TEST_SUITE_P(
    Soft, RuntimeTraceTest,
    ::testing::Values(
        Config{apps::AppKind::kTrapez, core::PolicyKind::kLocality, 1},
        Config{apps::AppKind::kTrapez, core::PolicyKind::kAdaptive, 2},
        Config{apps::AppKind::kMmult, core::PolicyKind::kLocality, 2},
        Config{apps::AppKind::kQsort, core::PolicyKind::kAdaptive, 1},
        Config{apps::AppKind::kFft, core::PolicyKind::kLocality, 1}),
    [](const ::testing::TestParamInfo<Config>& info) {
      std::string name = apps::to_string(info.param.app);
      name += core::to_string(info.param.policy);
      name += "G" + std::to_string(info.param.groups);
      return name;
    });

TEST(RuntimeTraceOffTest, NullTraceLeavesNoTrace) {
  apps::DdmParams params;
  params.num_kernels = 2;
  params.unroll = 8;
  apps::AppRun run = apps::build_app(apps::AppKind::kTrapez,
                                     apps::SizeClass::kSmall,
                                     apps::Platform::kNative, params);
  runtime::RuntimeOptions options;
  options.num_kernels = 2;
  runtime::Runtime rt(run.program, options);
  (void)rt.run();
  EXPECT_TRUE(run.validate());
}

TEST(TraceLogEmergencyTest, DestructionWithoutFinishFlushesToWriter) {
  std::vector<core::TraceRecord> flushed;
  bool called = false;
  {
    runtime::TraceLog log(/*num_kernels=*/1, /*num_groups=*/1);
    log.arm_emergency([&](std::vector<core::TraceRecord>&& records) {
      called = true;
      flushed = std::move(records);
    });
    log.record(0, core::TraceEvent::kDispatch, 3, 0);
    log.record(0, core::TraceEvent::kComplete, 3, 0);
    // No finish(): simulates an exception unwinding through run().
  }
  ASSERT_TRUE(called);
  ASSERT_EQ(flushed.size(), 2u);
  EXPECT_EQ(flushed[0].event, core::TraceEvent::kDispatch);
  EXPECT_EQ(flushed[1].event, core::TraceEvent::kComplete);
  EXPECT_LT(flushed[0].seq, flushed[1].seq);
}

TEST(TraceLogEmergencyTest, FinishDisarmsTheEmergencyWriter) {
  bool called = false;
  {
    runtime::TraceLog log(/*num_kernels=*/1, /*num_groups=*/1);
    log.arm_emergency(
        [&](std::vector<core::TraceRecord>&&) { called = true; });
    log.record(0, core::TraceEvent::kDispatch, 3, 0);
    (void)log.finish();
  }
  EXPECT_FALSE(called);
}

TEST(TraceLogEmergencyTest, EmergencyFlushIsIdempotent) {
  int calls = 0;
  runtime::TraceLog log(/*num_kernels=*/1, /*num_groups=*/1);
  log.arm_emergency([&](std::vector<core::TraceRecord>&&) { ++calls; });
  log.record(0, core::TraceEvent::kDispatch, 3, 0);
  log.emergency_flush();
  log.emergency_flush();
  EXPECT_EQ(calls, 1);
}

TEST(RuntimeTraceMutexTest, MutexStructuresTraceChecksClean) {
  apps::DdmParams params;
  params.num_kernels = 2;
  params.unroll = 8;
  params.tsu_capacity = 64;
  apps::AppRun run = apps::build_app(apps::AppKind::kTrapez,
                                     apps::SizeClass::kSmall,
                                     apps::Platform::kNative, params);
  core::ExecTrace trace;
  runtime::RuntimeOptions options;
  options.num_kernels = 2;
  options.lockfree = false;
  options.block_pipeline = false;
  options.trace = &trace;
  runtime::Runtime rt(run.program, options);
  (void)rt.run();
  EXPECT_TRUE(run.validate());
  EXPECT_FALSE(trace.pipelined);
  EXPECT_FALSE(trace.lockfree);
  const core::CheckReport report = check_trace(run.program, trace);
  EXPECT_TRUE(report.clean()) << report.to_string(run.program);
}

}  // namespace
}  // namespace tflux
