// Tests for the TFluxCell platform: CommandBuffer protocol, Local
// Store accounting, machine correctness, and the paper's QSORT
// capacity limitation.
#include "cell/cell_machine.h"

#include <gtest/gtest.h>

#include <tuple>

#include "apps/suite.h"
#include "cell/command_buffer.h"
#include "cell/local_store.h"
#include "core/builder.h"
#include "core/error.h"
#include "testing/random_graph.h"

namespace tflux::cell {
namespace {

// ---------------------------------------------------------------------------
// CommandBuffer
// ---------------------------------------------------------------------------

TEST(CommandBufferTest, CapacityIs16For128Bytes) {
  CommandBuffer cb(128);
  EXPECT_EQ(cb.capacity(), 16u);
  EXPECT_TRUE(cb.empty());
}

TEST(CommandBufferTest, FifoOrder) {
  CommandBuffer cb(128);
  EXPECT_TRUE(cb.push({SpeCommand::Kind::kComplete, 1}));
  EXPECT_TRUE(cb.push({SpeCommand::Kind::kFetch, 0}));
  EXPECT_TRUE(cb.push({SpeCommand::Kind::kLoadBlock, 2}));
  EXPECT_EQ(cb.size(), 3u);
  EXPECT_EQ(*cb.pop(), (SpeCommand{SpeCommand::Kind::kComplete, 1}));
  EXPECT_EQ(*cb.pop(), (SpeCommand{SpeCommand::Kind::kFetch, 0}));
  EXPECT_EQ(*cb.pop(), (SpeCommand{SpeCommand::Kind::kLoadBlock, 2}));
  EXPECT_FALSE(cb.pop().has_value());
}

TEST(CommandBufferTest, FullBufferStalls) {
  CommandBuffer cb(128);
  for (std::uint32_t i = 0; i < 16; ++i) {
    EXPECT_TRUE(cb.push({SpeCommand::Kind::kComplete, i}));
  }
  EXPECT_TRUE(cb.full());
  EXPECT_FALSE(cb.push({SpeCommand::Kind::kComplete, 99}));
  EXPECT_EQ(cb.stalls(), 1u);
  // Drain one, then the push succeeds.
  EXPECT_TRUE(cb.pop().has_value());
  EXPECT_TRUE(cb.push({SpeCommand::Kind::kComplete, 99}));
}

TEST(CommandBufferTest, WrapsAroundRing) {
  CommandBuffer cb(128);
  for (std::uint32_t round = 0; round < 10; ++round) {
    for (std::uint32_t i = 0; i < 12; ++i) {
      ASSERT_TRUE(cb.push({SpeCommand::Kind::kComplete, round * 100 + i}));
    }
    for (std::uint32_t i = 0; i < 12; ++i) {
      auto cmd = cb.pop();
      ASSERT_TRUE(cmd.has_value());
      EXPECT_EQ(cmd->id, round * 100 + i);
    }
  }
}

// ---------------------------------------------------------------------------
// Local Store accounting
// ---------------------------------------------------------------------------

TEST(LocalStoreTest, ResidentRangesUnioned) {
  CellConfig cfg;
  core::Footprint fp;
  fp.read(0x1000, 4096);
  fp.write(0x1000, 4096);  // in-place: overlaps, counted once
  fp.read(0x9000, 1024);
  EXPECT_EQ(ls_requirement(fp, cfg), 4096u + 1024u);
}

TEST(LocalStoreTest, PartialOverlapCountedOnce) {
  CellConfig cfg;
  core::Footprint fp;
  fp.read(0x1000, 4096);
  fp.read(0x1800, 4096);  // overlaps last 2KB of the first range
  EXPECT_EQ(ls_requirement(fp, cfg), 0x1800u + 4096u - 0x1000u);
}

TEST(LocalStoreTest, StreamingNeedsOnlyDoubleBuffer) {
  CellConfig cfg;
  core::Footprint fp;
  fp.read(0x100000, 8 * 1024 * 1024, /*stream=*/true);  // 8MB stream
  EXPECT_EQ(ls_requirement(fp, cfg), 2ull * cfg.ls_stream_tile_bytes);
  EXPECT_TRUE(fits_local_store(fp, cfg));
}

TEST(LocalStoreTest, OversizedResidentDoesNotFit) {
  CellConfig cfg;
  core::Footprint fp;
  fp.read(0x1000, 300 * 1024);  // > 256KB LS
  EXPECT_FALSE(fits_local_store(fp, cfg));
}

TEST(LocalStoreAllocatorTest, BumpAllocationAligned16) {
  LocalStoreAllocator alloc(1024);
  EXPECT_EQ(alloc.allocate(10), 0);
  EXPECT_EQ(alloc.allocate(20), 16);  // previous rounded to 16
  EXPECT_EQ(alloc.used(), 48u);
  EXPECT_EQ(alloc.allocate(2000), -1);  // out of space
  alloc.reset();
  EXPECT_EQ(alloc.allocate(1024), 0);
  EXPECT_EQ(alloc.peak(), 1024u);
}

// ---------------------------------------------------------------------------
// CellMachine
// ---------------------------------------------------------------------------

TEST(CellMachineTest, InvalidConfigRejected) {
  core::ProgramBuilder b;
  b.add_thread(b.add_block(), "t", {});
  core::Program p = b.build();
  EXPECT_THROW(CellMachine(ps3_cell(0), p), core::TFluxError);
  CellConfig bad = ps3_cell(2);
  bad.ls_reserved_bytes = bad.local_store_bytes;
  EXPECT_THROW(CellMachine(bad, p), core::TFluxError);
}

TEST(CellMachineTest, BodiesProduceResults) {
  core::ProgramBuilder b;
  auto hits = std::make_shared<int>(0);
  b.add_thread(b.add_block(), "t",
               [hits](const core::ExecContext&) { ++*hits; });
  core::Program p = b.build();
  const CellStats st = CellMachine(ps3_cell(2), p).run();
  EXPECT_EQ(*hits, 1);
  EXPECT_EQ(st.threads_executed, 1u);
  EXPECT_EQ(st.mailbox_messages, 3u);  // inlet + thread + outlet
}

TEST(CellMachineTest, IndependentThreadsScaleAcrossSpes) {
  auto run_with = [](std::uint16_t spes) {
    core::ProgramBuilder b;
    const core::BlockId blk = b.add_block();
    for (int i = 0; i < 12; ++i) {
      core::Footprint fp;
      fp.compute(1000000);
      b.add_thread(blk, "w", {}, std::move(fp));
    }
    core::Program p = b.build(core::BuildOptions{.num_kernels = spes});
    return CellMachine(ps3_cell(spes), p, false).run().total_cycles;
  };
  const Cycles c1 = run_with(1);
  const Cycles c6 = run_with(6);
  const double speedup = static_cast<double>(c1) / static_cast<double>(c6);
  EXPECT_GT(speedup, 5.0);
  EXPECT_LE(speedup, 6.1);
}

TEST(CellMachineTest, DmaChargesSharedBandwidth) {
  core::ProgramBuilder b;
  const core::BlockId blk = b.add_block();
  for (int i = 0; i < 4; ++i) {
    core::Footprint fp;
    fp.compute(100);
    fp.read(0x10000 + i * 0x10000, 65536);
    fp.write(0x100000 + i * 0x10000, 65536);
    b.add_thread(blk, "io", {}, std::move(fp));
  }
  core::Program p = b.build(core::BuildOptions{.num_kernels = 4});
  const CellStats st = CellMachine(ps3_cell(4), p, false).run();
  EXPECT_EQ(st.dma_bytes, 4u * 2u * 65536u);
  EXPECT_EQ(st.dma_transfers, 8u);
  // 512KB total through 8 B/cycle: at least 64K cycles elapse.
  EXPECT_GT(st.total_cycles, 65536u);
}

TEST(CellMachineTest, OversizedDThreadThrows) {
  core::ProgramBuilder b;
  core::Footprint fp;
  fp.read(0x1000, 250 * 1024);  // resident, > LS data region
  b.add_thread(b.add_block(), "big", {}, std::move(fp));
  core::Program p = b.build();
  CellMachine m(ps3_cell(2), p, false);
  EXPECT_THROW(m.run(), core::TFluxError);
}

TEST(CellMachineTest, QsortSizesFitTheLocalStore) {
  // Section 6.3 kept QSORT's Cell sizes at 3K/6K/12K because the
  // original decomposition's final merge needed the whole array
  // resident — the native 50K size overflowed the Local Store. The
  // depth-balanced sample-sort decomposition bounds every DThread's
  // resident footprint to ~2/P of the array, so both the paper's Cell
  // sizes and the native 50K size now fit (the LS capacity limit
  // itself is still enforced — see OversizedDThreadThrows above).
  apps::DdmParams params;
  params.num_kernels = 6;
  apps::AppRun cell_run = apps::build_app(
      apps::AppKind::kQsort, apps::SizeClass::kLarge, apps::Platform::kCell,
      params);
  EXPECT_NO_THROW(CellMachine(ps3_cell(6), cell_run.program, false).run());

  apps::AppRun native_run = apps::build_app(
      apps::AppKind::kQsort, apps::SizeClass::kLarge,
      apps::Platform::kNative, params);
  EXPECT_NO_THROW(CellMachine(ps3_cell(6), native_run.program, false).run());
}

TEST(CellMachineTest, TraceRecordsSpeAndPpeLanes) {
  core::ProgramBuilder b;
  const core::BlockId blk = b.add_block();
  for (int i = 0; i < 4; ++i) {
    core::Footprint fp;
    fp.compute(10000);
    b.add_thread(blk, "w" + std::to_string(i), {}, std::move(fp));
  }
  core::Program p = b.build(core::BuildOptions{.num_kernels = 2});
  sim::Trace trace;
  CellMachine m(ps3_cell(2), p, false);
  m.attach_trace(&trace);
  m.run();
  bool spe_span = false, ppe_span = false;
  for (const sim::TraceSpan& s : trace.spans()) {
    if (s.lane < 2) spe_span = true;
    if (s.lane == 2 && s.name == "ppe-sweep") ppe_span = true;
  }
  EXPECT_TRUE(spe_span);
  EXPECT_TRUE(ppe_span);
  EXPECT_NE(trace.to_chrome_json().find("PPE (TSU Emulator)"),
            std::string::npos);
}

TEST(CellMachineTest, RunTwiceRejected) {
  core::ProgramBuilder b;
  b.add_thread(b.add_block(), "t", {});
  core::Program p = b.build();
  CellMachine m(ps3_cell(1), p);
  m.run();
  EXPECT_THROW(m.run(), core::TFluxError);
}

// Property sweep: random graphs uphold the DDM contract on the Cell.
using Param = std::tuple<std::uint32_t, std::uint16_t>;
class CellPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(CellPropertyTest, RandomGraphsCompleteCorrectly) {
  const auto [seed, spes] = GetParam();
  tflux::testing::RandomGraphSpec spec;
  spec.seed = seed;
  spec.num_kernels = spes;
  spec.blocks = 3;
  spec.threads_per_block = 16;
  auto rp = tflux::testing::make_random_program(spec);

  const CellStats st = CellMachine(ps3_cell(spes), rp.program).run();
  EXPECT_EQ(rp.state->order_violations.load(), 0u);
  for (std::size_t t = 0; t < rp.program.num_app_threads(); ++t) {
    ASSERT_EQ(rp.state->runs[t].load(), 1u);
  }
  EXPECT_EQ(st.threads_executed, rp.program.num_app_threads());
  EXPECT_EQ(st.tsu.blocks_loaded, 3u);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphSweep, CellPropertyTest,
                         ::testing::Combine(::testing::Values(4u, 21u),
                                            ::testing::Values<std::uint16_t>(
                                                1, 2, 6)));

// Cross-validation: all four Cell benchmarks produce sequential-equal
// results when executed by the CellMachine.
class CellAppTest : public ::testing::TestWithParam<apps::AppKind> {};

TEST_P(CellAppTest, ResultsMatchSequential) {
  apps::DdmParams params;
  params.num_kernels = 4;
  params.unroll = 8;
  apps::AppRun run = apps::build_app(GetParam(), apps::SizeClass::kSmall,
                                     apps::Platform::kCell, params);
  CellMachine(ps3_cell(4), run.program).run();
  EXPECT_TRUE(run.validate()) << run.name;
}

INSTANTIATE_TEST_SUITE_P(CellApps, CellAppTest,
                         ::testing::Values(apps::AppKind::kTrapez,
                                           apps::AppKind::kMmult,
                                           apps::AppKind::kQsort,
                                           apps::AppKind::kSusan));

}  // namespace
}  // namespace tflux::cell
