// Determinism of the hot-path ablation switch: the lock-free runtime
// (SPSC rings + lanes) and the paper-faithful mutex runtime must
// execute the exact same DThread sets - same app results, same thread
// counts, same block loads - on every shipped application.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "apps/suite.h"
#include "runtime/runtime.h"

namespace tflux::runtime {
namespace {

using apps::AppKind;
using apps::AppRun;
using apps::DdmParams;
using apps::Platform;
using apps::SizeClass;

struct ModeResult {
  bool valid = false;
  std::uint64_t app_threads = 0;
  std::uint64_t blocks_loaded = 0;
  std::uint64_t updates_processed = 0;
};

ModeResult run_mode(AppKind kind, bool lockfree) {
  DdmParams params;
  params.num_kernels = 4;
  params.unroll = 8;
  params.tsu_capacity = 64;  // force multi-block programs
  AppRun run =
      apps::build_app(kind, SizeClass::kSmall, Platform::kSimulated, params);
  RuntimeOptions options;
  options.num_kernels = 4;
  options.lockfree = lockfree;
  const RuntimeStats st = Runtime(run.program, options).run();
  ModeResult r;
  r.valid = run.validate();
  r.app_threads = st.total_app_threads_executed();
  r.blocks_loaded = st.emulator.blocks_loaded;
  r.updates_processed = st.emulator.updates_processed;
  return r;
}

class LockfreeDeterminismTest : public ::testing::TestWithParam<AppKind> {};

TEST_P(LockfreeDeterminismTest, BothHotPathsExecuteIdenticalThreadSets) {
  const AppKind kind = GetParam();
  const ModeResult lf = run_mode(kind, /*lockfree=*/true);
  const ModeResult mx = run_mode(kind, /*lockfree=*/false);
  EXPECT_TRUE(lf.valid) << "lock-free run produced wrong results";
  EXPECT_TRUE(mx.valid) << "mutex run produced wrong results";
  EXPECT_EQ(lf.app_threads, mx.app_threads);
  EXPECT_EQ(lf.blocks_loaded, mx.blocks_loaded);
  // Updates are program-determined (one per consumer arc fired), not
  // schedule-determined: both paths must process the same number.
  EXPECT_EQ(lf.updates_processed, mx.updates_processed);
}

INSTANTIATE_TEST_SUITE_P(AllApps, LockfreeDeterminismTest,
                         ::testing::ValuesIn(apps::all_apps()),
                         [](const auto& info) {
                           return std::string(apps::to_string(info.param));
                         });

TEST(LockfreeRuntimeTest, LaneCapacityOptionRespected) {
  // A tiny lane still executes correctly: chunked publishes + the
  // full-lane spin path, end to end.
  DdmParams params;
  params.num_kernels = 2;
  params.unroll = 4;
  AppRun run = apps::build_app(AppKind::kTrapez, SizeClass::kSmall,
                               Platform::kSimulated, params);
  RuntimeOptions options;
  options.num_kernels = 2;
  options.lockfree = true;
  options.tub_lane_capacity = 2;
  Runtime rt(run.program, options);
  rt.run();
  EXPECT_TRUE(run.validate());
}

}  // namespace
}  // namespace tflux::runtime
