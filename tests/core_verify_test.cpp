// ddmlint unit tests: one test per diagnostic class, each asserting
// the exact diagnostic code the verifier must emit, plus a "lint is
// clean" sweep over every shipped benchmark program. Broken graphs are
// obtained two ways: ProgramBuilder with BuildOptions::validate off
// (materializes representable defects), and ProgramTestPeer (corrupts
// invariants the builder always gets right, e.g. Ready Counts).
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "apps/suite.h"
#include "core/builder.h"
#include "core/error.h"
#include "core/footprint.h"
#include "core/verify.h"
#include "testing/program_test_peer.h"

namespace tflux::core {
namespace {

Footprint write_range(SimAddr addr, std::uint32_t bytes) {
  Footprint fp;
  fp.compute(100);
  fp.write(addr, bytes);
  return fp;
}

Footprint read_range(SimAddr addr, std::uint32_t bytes) {
  Footprint fp;
  fp.compute(100);
  fp.read(addr, bytes);
  return fp;
}

/// a -> {l, r} -> j, all in one block: the smallest interesting DAG.
Program make_diamond() {
  ProgramBuilder builder("diamond");
  const BlockId blk = builder.add_block();
  const ThreadId a = builder.add_thread(blk, "a", {});
  const ThreadId l = builder.add_thread(blk, "l", {});
  const ThreadId r = builder.add_thread(blk, "r", {});
  const ThreadId j = builder.add_thread(blk, "j", {});
  builder.add_arc(a, l);
  builder.add_arc(a, r);
  builder.add_arc(l, j);
  builder.add_arc(r, j);
  return builder.build();
}

std::vector<const Diagnostic*> with_code(const VerifyReport& report,
                                         Diag code) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) out.push_back(&d);
  }
  return out;
}

TEST(VerifyTest, CleanProgramHasNoDiagnostics) {
  const Program program = make_diamond();
  const VerifyReport report = verify(program);
  EXPECT_TRUE(report.clean()) << report.to_string(program);
  EXPECT_EQ(report.num_errors, 0u);
  EXPECT_EQ(report.num_warnings, 0u);
}

// -- 1. Ready Count consistency ---------------------------------------

TEST(VerifyTest, ReadyCountBelowInDegreeIsAnError) {
  Program program = make_diamond();
  // Join thread has two producers; pretend a buggy TSU image said one.
  const ThreadId join = 3;
  ASSERT_EQ(program.thread(join).ready_count_init, 2u);
  ProgramTestPeer::thread(program, join).ready_count_init = 1;

  const VerifyReport report = verify(program);
  const auto found = with_code(report, Diag::kReadyCountMismatch);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(found[0]->thread, join);
  EXPECT_EQ(found[0]->block, 0u);
  EXPECT_TRUE(report.has_errors());
}

TEST(VerifyTest, ReadyCountAboveInDegreeIsAnOrphan) {
  Program program = make_diamond();
  const ThreadId join = 3;
  ProgramTestPeer::thread(program, join).ready_count_init = 3;

  const VerifyReport report = verify(program);
  const auto found = with_code(report, Diag::kOrphanThread);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(found[0]->thread, join);
}

TEST(VerifyTest, CorruptedOutletReadyCountIsAnError) {
  Program program = make_diamond();
  // One sink (the join); claim two so the Outlet deadlocks.
  ASSERT_EQ(program.block(0).sink_count, 1u);
  ProgramTestPeer::block(program, 0).sink_count = 2;
  ProgramTestPeer::thread(program, program.block(0).outlet)
      .ready_count_init = 2;

  // Both sub-checks fire: sink_count disagrees with the actual sinks,
  // and the Outlet's Ready Count does too.
  const VerifyReport report = verify(program);
  EXPECT_EQ(with_code(report, Diag::kOutletReadyCountMismatch).size(), 2u)
      << report.to_string(program);
}

TEST(VerifyTest, InletWithReadyCountIsAnError) {
  Program program = make_diamond();
  ProgramTestPeer::thread(program, program.block(0).inlet)
      .ready_count_init = 1;

  const VerifyReport report = verify(program);
  EXPECT_EQ(with_code(report, Diag::kInletNotQuiescent).size(), 1u)
      << report.to_string(program);
}

// -- 2. Deadlock -------------------------------------------------------

TEST(VerifyTest, IntraBlockCycleIsDetected) {
  ProgramBuilder builder("cycle");
  const BlockId blk = builder.add_block();
  const ThreadId a = builder.add_thread(blk, "a", {});
  const ThreadId b = builder.add_thread(blk, "b", {});
  const ThreadId c = builder.add_thread(blk, "c", {});
  builder.add_arc(a, b);
  builder.add_arc(b, c);
  builder.add_arc(c, a);

  BuildOptions options;
  options.validate = false;
  const Program program = builder.build(options);

  const VerifyReport report = verify(program);
  const auto found = with_code(report, Diag::kIntraBlockCycle);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(found[0]->block, 0u);
  // Each thread has exactly one producer and RC 1, so the cycle is the
  // *only* finding - no spurious Ready Count noise.
  EXPECT_EQ(report.num_errors, static_cast<std::uint32_t>(found.size()))
      << report.to_string(program);
}

TEST(VerifyTest, SelfArcIsACycleOfLengthOne) {
  ProgramBuilder builder("self");
  const BlockId blk = builder.add_block();
  const ThreadId a = builder.add_thread(blk, "a", {});
  builder.add_arc(a, a);

  BuildOptions options;
  options.validate = false;
  const Program program = builder.build(options);

  const VerifyReport report = verify(program);
  EXPECT_GE(with_code(report, Diag::kIntraBlockCycle).size(), 1u)
      << report.to_string(program);
}

// -- 3. Cross-block arcs ----------------------------------------------

TEST(VerifyTest, BackwardCrossBlockArcIsAnError) {
  ProgramBuilder builder("backward");
  const BlockId b0 = builder.add_block();
  const BlockId b1 = builder.add_block();
  const ThreadId early = builder.add_thread(b0, "early", {});
  const ThreadId late = builder.add_thread(b1, "late", {});
  builder.add_arc(late, early);  // later block feeds an earlier one

  BuildOptions options;
  options.validate = false;
  const Program program = builder.build(options);

  const VerifyReport report = verify(program);
  const auto found = with_code(report, Diag::kBackwardCrossBlockArc);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->thread, late);
  EXPECT_EQ(found[0]->other, early);
}

TEST(VerifyTest, ValidatingBuildStillRejectsBackwardArc) {
  ProgramBuilder builder("backward");
  const BlockId b0 = builder.add_block();
  const BlockId b1 = builder.add_block();
  const ThreadId early = builder.add_thread(b0, "early", {});
  const ThreadId late = builder.add_thread(b1, "late", {});
  builder.add_arc(late, early);
  EXPECT_THROW(builder.build(), TFluxError);
}

TEST(VerifyTest, DanglingCrossBlockArcIsAnError) {
  Program program = make_diamond();
  ProgramTestPeer::cross_block_arcs(program)
      .push_back({/*producer=*/0, /*consumer=*/999});

  const VerifyReport report = verify(program);
  EXPECT_EQ(with_code(report, Diag::kDanglingArc).size(), 1u)
      << report.to_string(program);
}

// -- 4. Footprint races -----------------------------------------------

TEST(VerifyTest, ConcurrentOverlappingWritesAreARace) {
  ProgramBuilder builder("race");
  const BlockId blk = builder.add_block();
  const ThreadId w1 =
      builder.add_thread(blk, "w1", {}, write_range(0x1000, 256));
  const ThreadId w2 =
      builder.add_thread(blk, "w2", {}, write_range(0x1080, 256));
  const Program program = builder.build();

  const VerifyReport report = verify(program);
  const auto found = with_code(report, Diag::kFootprintRace);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(std::minmax(found[0]->thread, found[0]->other),
            std::minmax(w1, w2));
}

TEST(VerifyTest, WriteReadOverlapWithoutArcIsARace) {
  ProgramBuilder builder("race_rw");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "w", {}, write_range(0x1000, 64));
  builder.add_thread(blk, "r", {}, read_range(0x1020, 64));
  const Program program = builder.build();

  const VerifyReport report = verify(program);
  EXPECT_EQ(with_code(report, Diag::kFootprintRace).size(), 1u)
      << report.to_string(program);
}

TEST(VerifyTest, OrderedOverlapIsNotARace) {
  ProgramBuilder builder("ordered");
  const BlockId blk = builder.add_block();
  const ThreadId w = builder.add_thread(blk, "w", {}, write_range(0x1000, 64));
  const ThreadId r = builder.add_thread(blk, "r", {}, read_range(0x1000, 64));
  builder.add_arc(w, r);  // the arc orders them: no race
  const Program program = builder.build();

  const VerifyReport report = verify(program);
  EXPECT_TRUE(report.clean()) << report.to_string(program);
}

TEST(VerifyTest, TransitivelyOrderedOverlapIsNotARace) {
  ProgramBuilder builder("transitive");
  const BlockId blk = builder.add_block();
  const ThreadId a = builder.add_thread(blk, "a", {}, write_range(0x1000, 64));
  const ThreadId m = builder.add_thread(blk, "m", {});
  const ThreadId b = builder.add_thread(blk, "b", {}, write_range(0x1000, 64));
  builder.add_arc(a, m);
  builder.add_arc(m, b);  // a -> m -> b: ordered despite no direct arc
  const Program program = builder.build();

  const VerifyReport report = verify(program);
  EXPECT_TRUE(report.clean()) << report.to_string(program);
}

TEST(VerifyTest, ReadReadOverlapIsNotARace) {
  ProgramBuilder builder("readers");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "r1", {}, read_range(0x1000, 64));
  builder.add_thread(blk, "r2", {}, read_range(0x1000, 64));
  const Program program = builder.build();

  EXPECT_TRUE(verify(program).clean());
}

TEST(VerifyTest, CrossBlockOverlapIsNotARace) {
  // Blocks execute strictly sequentially (Inlet/Outlet barrier), so
  // identical write ranges in different blocks never race.
  ProgramBuilder builder("blocks");
  const BlockId b0 = builder.add_block();
  const BlockId b1 = builder.add_block();
  builder.add_thread(b0, "w0", {}, write_range(0x1000, 64));
  builder.add_thread(b1, "w1", {}, write_range(0x1000, 64));
  const Program program = builder.build();

  EXPECT_TRUE(verify(program).clean());
}

TEST(VerifyTest, DisjointWritesAreNotARace) {
  ProgramBuilder builder("disjoint");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "w1", {}, write_range(0x1000, 64));
  builder.add_thread(blk, "w2", {}, write_range(0x1040, 64));
  const Program program = builder.build();

  EXPECT_TRUE(verify(program).clean());
}

TEST(VerifyTest, RaceCheckCanBeDisabled) {
  ProgramBuilder builder("race");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "w1", {}, write_range(0x1000, 64));
  builder.add_thread(blk, "w2", {}, write_range(0x1000, 64));
  const Program program = builder.build();

  VerifyOptions options;
  options.check_races = false;
  EXPECT_TRUE(verify(program, options).clean());
}

TEST(VerifyTest, OversizedBlockSkipsRaceCheckWithWarning) {
  ProgramBuilder builder("big");
  const BlockId blk = builder.add_block();
  for (int i = 0; i < 4; ++i) {
    builder.add_thread(blk, "w", {}, write_range(0x1000, 64));
  }
  const Program program = builder.build();

  VerifyOptions options;
  options.race_check_max_threads = 2;
  const VerifyReport report = verify(program, options);
  EXPECT_EQ(with_code(report, Diag::kRaceCheckSkipped).size(), 1u)
      << report.to_string(program);
  EXPECT_EQ(with_code(report, Diag::kFootprintRace).size(), 0u);
  EXPECT_FALSE(report.has_errors());
}

TEST(VerifyTest, EmptyRangeIsRecordedAndWarned) {
  // Regression: Footprint::read/write used to silently drop zero-byte
  // ranges; they must be recorded so the verifier can flag them.
  Footprint fp;
  fp.read(0x1000, 0);
  ASSERT_EQ(fp.ranges.size(), 1u);
  EXPECT_EQ(fp.ranges[0].bytes, 0u);

  ProgramBuilder builder("empty_range");
  const BlockId blk = builder.add_block();
  const ThreadId t = builder.add_thread(blk, "t", {}, std::move(fp));
  const Program program = builder.build();

  const VerifyReport report = verify(program);
  const auto found = with_code(report, Diag::kEmptyRange);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_EQ(found[0]->thread, t);
  EXPECT_FALSE(report.has_errors());
}

TEST(VerifyTest, OverflowingRangeIsWarned) {
  Footprint fp;
  fp.write(~SimAddr{0} - 8, 64);  // addr + bytes wraps the address space
  ProgramBuilder builder("overflow");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "t", {}, std::move(fp));
  const Program program = builder.build();

  const VerifyReport report = verify(program);
  EXPECT_EQ(with_code(report, Diag::kRangeOverflow).size(), 1u)
      << report.to_string(program);
  EXPECT_FALSE(report.has_errors());
}

// -- 5. Capacity / placement ------------------------------------------

TEST(VerifyTest, BlockExceedingTsuCapacityIsAnError) {
  ProgramBuilder builder("fat");
  const BlockId blk = builder.add_block();
  for (int i = 0; i < 3; ++i) builder.add_thread(blk, "t", {});
  const Program program = builder.build();  // unlimited capacity: fine

  VerifyOptions options;
  options.tsu_capacity = 4;  // 3 app + inlet + outlet = 5 > 4
  const VerifyReport report = verify(program, options);
  const auto found = with_code(report, Diag::kCapacityExceeded);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kError);

  options.tsu_capacity = 5;
  EXPECT_TRUE(verify(program, options).clean());
}

TEST(VerifyTest, FanOutBeyondLaneCapacityIsWarned) {
  // source -> 6 consumers: publishing the source's completion in the
  // lock-free runtime needs 6 lane slots; a 4-entry lane forces a
  // chunked, possibly-stalling publish.
  ProgramBuilder builder("fanout");
  const BlockId blk = builder.add_block();
  const ThreadId source = builder.add_thread(blk, "source", {});
  for (int i = 0; i < 6; ++i) {
    builder.add_arc(source, builder.add_thread(blk, "w", {}));
  }
  const Program program = builder.build();

  VerifyOptions options;
  options.tub_lane_capacity = 4;
  const VerifyReport report = verify(program, options);
  const auto found = with_code(report, Diag::kLaneCapacityStall);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_EQ(found[0]->thread, source);
  EXPECT_FALSE(report.has_errors());

  options.tub_lane_capacity = 6;
  EXPECT_TRUE(verify(program, options).clean());
  options.tub_lane_capacity = 0;  // disabled
  EXPECT_TRUE(verify(program, options).clean());
}

TEST(VerifyTest, StallProneBlockIsWarned) {
  // Two-block program: block 0 has 2 app threads, block 1 has 6. With
  // a threshold of 4 (kernels x 2 for 2 kernels), block 0 cannot keep
  // the kernels busy across its transition; block 1, being last, has
  // no following transition and is exempt however small.
  ProgramBuilder builder("thin");
  const BlockId b0 = builder.add_block();
  for (int i = 0; i < 2; ++i) builder.add_thread(b0, "a", {});
  const BlockId b1 = builder.add_block();
  for (int i = 0; i < 6; ++i) builder.add_thread(b1, "b", {});
  const Program program = builder.build();

  VerifyOptions options;
  options.min_block_threads = 4;
  const VerifyReport report = verify(program, options);
  const auto found = with_code(report, Diag::kStallProneBlock);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_EQ(found[0]->block, b0);
  EXPECT_FALSE(report.has_errors());

  options.min_block_threads = 2;  // block 0 meets the bar
  EXPECT_TRUE(verify(program, options).clean());
  options.min_block_threads = 0;  // disabled (the default)
  EXPECT_TRUE(verify(program, options).clean());
}

TEST(VerifyTest, CoalescableUnitArcFanOutIsWarned) {
  // source declares 5 unit arcs to 5 consecutively-created consumers:
  // with a threshold of 4 that run should be one range arc.
  ProgramBuilder builder("coalescable");
  const BlockId blk = builder.add_block();
  const ThreadId source = builder.add_thread(blk, "source", {});
  for (int i = 0; i < 5; ++i) {
    builder.add_arc(source, builder.add_thread(blk, "w", {}));
  }
  const Program program = builder.build();

  VerifyOptions options;
  options.coalescable_arc_min = 4;
  const VerifyReport report = verify(program, options);
  const auto found = with_code(report, Diag::kCoalescableArcs);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_EQ(found[0]->thread, source);
  EXPECT_FALSE(report.has_errors());

  options.coalescable_arc_min = 6;  // run of 5 is below the bar
  EXPECT_TRUE(verify(program, options).clean());
  options.coalescable_arc_min = 0;  // disabled (the default)
  EXPECT_TRUE(verify(program, options).clean());
}

TEST(VerifyTest, ScatteredFanOutIsNotFlaggedAsCoalescable) {
  // Arcs to non-consecutive consumers cannot be a range arc: the
  // longest run is 1, below any sensible threshold.
  ProgramBuilder builder("scattered");
  const BlockId blk = builder.add_block();
  const ThreadId source = builder.add_thread(blk, "source", {});
  std::vector<ThreadId> consumers;
  for (int i = 0; i < 5; ++i) {
    consumers.push_back(builder.add_thread(blk, "w", {}));
    builder.add_thread(blk, "gap", {});  // breaks id consecutiveness
  }
  for (ThreadId c : consumers) builder.add_arc(source, c);
  const Program program = builder.build();

  VerifyOptions options;
  options.coalescable_arc_min = 2;
  const VerifyReport report = verify(program, options);
  EXPECT_TRUE(with_code(report, Diag::kCoalescableArcs).empty())
      << report.to_string(program);
}

TEST(VerifyTest, SingleBlockProgramIsNeverStallProne) {
  // One block = no transitions to cover, whatever the threshold.
  ProgramBuilder builder("single");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "t", {});
  const Program program = builder.build();

  VerifyOptions options;
  options.min_block_threads = 64;
  EXPECT_TRUE(verify(program, options).clean());
}

TEST(VerifyTest, HomeKernelOutOfRangeIsAnError) {
  ProgramBuilder builder("pinned");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "t", {}, {}, /*home=*/5);
  BuildOptions build_options;
  build_options.num_kernels = 8;
  const Program program = builder.build(build_options);

  VerifyOptions options;
  options.num_kernels = 2;  // target machine has fewer kernels
  const VerifyReport report = verify(program, options);
  EXPECT_EQ(with_code(report, Diag::kHomeKernelOutOfRange).size(), 1u)
      << report.to_string(program);

  options.num_kernels = 8;
  EXPECT_TRUE(verify(program, options).clean());
}

// -- Affinity-split (data-plane locality smell) ------------------------

/// Four producers homed on kernels 0..3, each writing a distinct 64 B
/// range, all feeding one consumer that reads all four.
Program make_split_consumer() {
  ProgramBuilder builder("split");
  const BlockId blk = builder.add_block();
  Footprint rc;
  rc.compute(100);
  std::vector<ThreadId> producers;
  for (KernelId k = 0; k < 4; ++k) {
    const SimAddr addr = 0x1000 + static_cast<SimAddr>(k) * 0x100;
    producers.push_back(builder.add_thread(
        blk, "p" + std::to_string(k), {}, write_range(addr, 64), k));
    rc.read(addr, 64);
  }
  const ThreadId c = builder.add_thread(blk, "c", {}, std::move(rc));
  for (ThreadId p : producers) builder.add_arc(p, c);
  BuildOptions build_options;
  build_options.num_kernels = 4;
  return builder.build(build_options);
}

TEST(VerifyTest, AffinitySplitFlagsManyProducerConsumers) {
  const Program program = make_split_consumer();

  VerifyOptions options;
  options.num_kernels = 4;
  options.affinity_split = 2;  // input spans 4 kernels > 2
  const VerifyReport report = verify(program, options);
  const auto found = with_code(report, Diag::kAffinitySplit);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_FALSE(report.has_errors());

  options.affinity_split = 4;  // exactly at the threshold: allowed
  EXPECT_TRUE(verify(program, options).clean());
  options.affinity_split = 0;  // disabled (the default)
  EXPECT_TRUE(verify(program, options).clean());
}

TEST(VerifyTest, AffinitySplitCountsShardsWhenTopologyGiven) {
  const Program program = make_split_consumer();

  // Kernels 0..3 clustered into 2 shards: the same consumer spans only
  // 2 shards, so the kernel-level split disappears at shard level.
  VerifyOptions options;
  options.num_kernels = 4;
  options.shards = 2;
  options.affinity_split = 2;
  EXPECT_TRUE(verify(program, options).clean());

  options.affinity_split = 1;
  const VerifyReport report = verify(program, options);
  const auto found = with_code(report, Diag::kAffinitySplit);
  ASSERT_EQ(found.size(), 1u) << report.to_string(program);
  EXPECT_NE(found[0]->message.find("shards"), std::string::npos);
}

// -- Strict build mode -------------------------------------------------

TEST(VerifyTest, StrictBuildThrowsOnRace) {
  ProgramBuilder builder("race");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "w1", {}, write_range(0x1000, 64));
  builder.add_thread(blk, "w2", {}, write_range(0x1000, 64));

  BuildOptions options;
  options.strict = true;
  try {
    builder.build(options);
    FAIL() << "strict build of a racy program must throw";
  } catch (const TFluxError& e) {
    EXPECT_NE(std::string(e.what()).find("footprint-race"),
              std::string::npos)
        << e.what();
  }
}

TEST(VerifyTest, StrictBuildAcceptsCleanProgram) {
  ProgramBuilder builder("clean");
  const BlockId blk = builder.add_block();
  const ThreadId w = builder.add_thread(blk, "w", {}, write_range(0x1000, 64));
  const ThreadId r = builder.add_thread(blk, "r", {}, read_range(0x1000, 64));
  builder.add_arc(w, r);

  BuildOptions options;
  options.strict = true;
  EXPECT_NO_THROW(builder.build(options));
}

// -- Formatting --------------------------------------------------------

TEST(VerifyTest, DiagnosticToStringNamesThreadsAndCode) {
  ProgramBuilder builder("race");
  const BlockId blk = builder.add_block();
  builder.add_thread(blk, "alpha", {}, write_range(0x1000, 64));
  builder.add_thread(blk, "beta", {}, write_range(0x1000, 64));
  const Program program = builder.build();

  const VerifyReport report = verify(program);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  const std::string text = report.diagnostics[0].to_string(program);
  EXPECT_NE(text.find("error"), std::string::npos) << text;
  EXPECT_NE(text.find("footprint-race"), std::string::npos) << text;
  EXPECT_NE(text.find("alpha"), std::string::npos) << text;
  EXPECT_NE(text.find("beta"), std::string::npos) << text;
}

// -- The sweep: every shipped benchmark must be lint-clean -------------

TEST(VerifyTest, AllAppsAreLintClean) {
  apps::DdmParams params;  // defaults: 4 kernels, unroll 16, TSU 512
  for (const apps::AppKind kind : apps::all_apps()) {
    for (const apps::Platform platform :
         {apps::Platform::kSimulated, apps::Platform::kNative}) {
      const apps::AppRun run = apps::build_app(
          kind, apps::SizeClass::kSmall, platform, params);
      VerifyOptions options;
      options.tsu_capacity = params.tsu_capacity;
      options.num_kernels = params.num_kernels;
      const VerifyReport report = verify(run.program, options);
      EXPECT_TRUE(report.clean())
          << run.name << ": " << report.to_string(run.program);
    }
  }
  for (const apps::AppKind kind : apps::cell_apps()) {
    const apps::AppRun run = apps::build_app(
        kind, apps::SizeClass::kSmall, apps::Platform::kCell, params);
    VerifyOptions options;
    options.tsu_capacity = params.tsu_capacity;
    options.num_kernels = params.num_kernels;
    const VerifyReport report = verify(run.program, options);
    EXPECT_TRUE(report.clean())
        << run.name << ": " << report.to_string(run.program);
  }
}

}  // namespace
}  // namespace tflux::core
