// Tests for the lock-free hot-path structures: the SPSC ring, the
// spin-then-park Parker, the lock-free Mailbox, and the per-kernel
// LaneTub. The cross-thread tests carry the `concurrent` ctest label
// so the TSan CI flavor sweeps them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/error.h"
#include "runtime/lane_tub.h"
#include "runtime/mailbox.h"
#include "runtime/parking.h"
#include "runtime/spsc_ring.h"

namespace tflux::runtime {
namespace {

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(256).capacity(), 256u);
  EXPECT_EQ(SpscRing<int>(257).capacity(), 512u);
}

TEST(SpscRingTest, FifoUntilFullThenEmpty) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));  // full
  EXPECT_EQ(ring.size_approx(), 4u);
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(ring.try_pop(v));  // empty
  EXPECT_TRUE(ring.probably_empty());
}

TEST(SpscRingTest, WraparoundPreservesOrder) {
  SpscRing<int> ring(8);
  int expected = 0;
  int v = -1;
  // Push/pop far past the capacity so the cursors wrap many times.
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(round * 5 + i));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(ring.try_pop(v));
      ASSERT_EQ(v, expected++);
    }
  }
}

TEST(SpscRingTest, BulkPushAndPopAll) {
  SpscRing<int> ring(8);
  const std::vector<int> data = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(ring.try_push_n(data.data(), data.size()), 6u);
  // Only 2 slots left: a partial bulk push.
  EXPECT_EQ(ring.try_push_n(data.data(), data.size()), 2u);
  std::vector<int> out;
  EXPECT_EQ(ring.pop_all(out), 8u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5, 6, 1, 2}));
  EXPECT_EQ(ring.pop_all(out), 0u);
}

TEST(SpscRingTest, ProducerConsumerStress) {
  // Spin with yield, not cpu_relax: on a single-core host a pure PAUSE
  // spin burns whole timeslices while the other side waits for the CPU.
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(64);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t v = 0;
  while (expected < kItems) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.probably_empty());
}

TEST(SpscRingTest, BulkProducerConsumerStress) {
  constexpr std::uint64_t kItems = 100000;
  SpscRing<std::uint64_t> ring(32);
  std::thread producer([&] {
    std::uint64_t batch[7];
    std::uint64_t next = 0;
    while (next < kItems) {
      std::size_t n = 0;
      while (n < 7 && next + n < kItems) {
        batch[n] = next + n;
        ++n;
      }
      std::size_t pushed = 0;
      while (pushed < n) {
        const std::size_t got = ring.try_push_n(batch + pushed, n - pushed);
        if (got == 0) std::this_thread::yield();
        pushed += got;
      }
      next += n;
    }
  });
  std::vector<std::uint64_t> out;
  std::uint64_t expected = 0;
  while (expected < kItems) {
    out.clear();
    if (ring.pop_all(out) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::uint64_t v : out) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
}

// ---------------------------------------------------------------------------
// Parker
// ---------------------------------------------------------------------------

TEST(ParkerTest, ReturnsImmediatelyWhenDataReady) {
  Parker parker;
  EXPECT_TRUE(parker.wait([] { return true; }, [] { return false; }));
}

TEST(ParkerTest, StopWinsWhenNoData) {
  Parker parker;
  EXPECT_FALSE(parker.wait([] { return false; }, [] { return true; }));
}

TEST(ParkerTest, ConsumingPredicateInvokedOnceAfterTrue) {
  Parker parker;
  int polls_after_hit = 0;
  bool hit = false;
  parker.wait(
      [&] {
        if (hit) ++polls_after_hit;
        hit = true;
        return true;
      },
      [] { return false; });
  EXPECT_EQ(polls_after_hit, 0);
}

TEST(ParkerTest, WakesParkedWaiterOnNotify) {
  // Drive the waiter all the way into the parked state (tiny spin
  // budget), then publish data and notify from another thread.
  Parker parker;
  SpinPolicy tiny;
  tiny.pause_spins = 1;
  tiny.yields = 1;
  std::atomic<bool> data{false};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    const bool got = parker.wait(
        [&] { return data.load(std::memory_order_acquire); },
        [] { return false; }, tiny);
    EXPECT_TRUE(got);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  data.store(true, std::memory_order_release);
  parker.notify();
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(ParkerTest, NotifyAlwaysWakesForStop) {
  Parker parker;
  SpinPolicy tiny;
  tiny.pause_spins = 1;
  tiny.yields = 1;
  std::atomic<bool> stop{false};
  std::thread waiter([&] {
    EXPECT_FALSE(parker.wait([] { return false; },
                             [&] { return stop.load(); }, tiny));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  stop.store(true);
  parker.notify_always();
  waiter.join();
}

// ---------------------------------------------------------------------------
// Mailbox (both modes)
// ---------------------------------------------------------------------------

class MailboxModeTest : public ::testing::TestWithParam<bool> {};

TEST_P(MailboxModeTest, FifoAcrossThreads) {
  const bool lockfree = GetParam();
  constexpr std::uint32_t kItems = 50000;
  Mailbox mb(lockfree, 64);
  EXPECT_EQ(mb.lockfree(), lockfree);
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kItems; ++i) {
      mb.put(core::ThreadId{i});
    }
  });
  for (std::uint32_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(mb.take(), core::ThreadId{i});
  }
  producer.join();
  EXPECT_TRUE(mb.probably_empty());
  EXPECT_EQ(mb.size(), 0u);
}

TEST_P(MailboxModeTest, CountTracksOccupancy) {
  Mailbox mb(GetParam(), 64);
  EXPECT_TRUE(mb.probably_empty());
  mb.put(1);
  mb.put(2);
  mb.put(3);
  EXPECT_EQ(mb.size(), 3u);
  EXPECT_FALSE(mb.probably_empty());
  EXPECT_EQ(mb.take(), 1u);
  EXPECT_EQ(mb.size(), 2u);
  EXPECT_EQ(mb.take(), 2u);
  EXPECT_EQ(mb.take(), 3u);
  EXPECT_TRUE(mb.probably_empty());
}

INSTANTIATE_TEST_SUITE_P(BothModes, MailboxModeTest,
                         ::testing::Values(true, false),
                         [](const auto& info) {
                           return info.param ? "lockfree" : "mutex";
                         });

TEST(MailboxTest, LockfreePutSpinsThroughFullRing) {
  // Capacity 2: the producer must wait for the consumer to catch up;
  // nothing may be lost or reordered.
  constexpr std::uint32_t kItems = 20000;
  Mailbox mb(true, 2);
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < kItems; ++i) mb.put(core::ThreadId{i});
  });
  for (std::uint32_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(mb.take(), core::ThreadId{i});
  }
  producer.join();
}

// ---------------------------------------------------------------------------
// LaneTub
// ---------------------------------------------------------------------------

TEST(LaneTubTest, SingleLanePublishDrainFifo) {
  LaneTub tub(1, 16);
  const std::vector<TubEntry> batch = {
      {TubEntry::Kind::kLoadBlock, 0},
      {TubEntry::Kind::kUpdate, 7},
      {TubEntry::Kind::kUpdate, 9},
  };
  tub.publish(batch, 0);
  std::vector<TubEntry> out;
  EXPECT_EQ(tub.drain(out), 3u);
  EXPECT_EQ(out, batch);
  const TubStats st = tub.stats();
  EXPECT_EQ(st.publishes, 1u);
  EXPECT_EQ(st.entries_published, 3u);
  EXPECT_EQ(st.drains, 1u);
  EXPECT_EQ(st.trylock_failures, 0u);  // structurally impossible now
}

TEST(LaneTubTest, OversizeBatchRejected) {
  LaneTub tub(2, 8);
  const std::vector<TubEntry> batch(tub.max_batch() + 1,
                                    TubEntry{TubEntry::Kind::kUpdate, 1});
  EXPECT_THROW(tub.publish(batch, 0), core::TFluxError);
}

TEST(LaneTubTest, HintSelectsLaneModuloCount) {
  LaneTub tub(2, 8);
  const std::vector<TubEntry> a = {{TubEntry::Kind::kUpdate, 1}};
  const std::vector<TubEntry> b = {{TubEntry::Kind::kUpdate, 2}};
  tub.publish(a, 2);  // 2 % 2 == lane 0
  tub.publish(b, 1);  // lane 1
  std::vector<TubEntry> out;
  EXPECT_EQ(tub.drain(out), 2u);
  // Drain order is lane order: lane 0's entry first.
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 2u);
}

TEST(LaneTubTest, ShutdownWakeUnblocksWaiter) {
  LaneTub tub(1, 8);
  std::thread waiter([&] { tub.wait_nonempty(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  tub.shutdown_wake();
  waiter.join();
}

TEST(LaneTubTest, MultiProducerStressPreservesPerLaneOrder) {
  // Each producer hammers its own lane with ascending ids (batches of
  // varying size, lane stamped in the top bits); the consumer drains
  // concurrently and checks that every producer's ids arrive in
  // strictly ascending order - the ordering rule the emulator relies
  // on. Publishers outpace the drainer on purpose so the lane-full
  // spin path is exercised too.
  constexpr std::uint32_t kProducers = 3;
  constexpr std::uint32_t kPerProducer = 30000;
  LaneTub tub(kProducers, 16);
  std::vector<std::thread> producers;
  for (std::uint32_t lane = 0; lane < kProducers; ++lane) {
    producers.emplace_back([&tub, lane] {
      std::vector<TubEntry> batch;
      std::uint32_t next = 0;
      while (next < kPerProducer) {
        batch.clear();
        const std::uint32_t n = 1 + next % 7;
        for (std::uint32_t i = 0; i < n && next < kPerProducer; ++i) {
          batch.push_back(
              TubEntry{TubEntry::Kind::kUpdate, (lane << 24) | next});
          ++next;
        }
        tub.publish(batch, lane);
      }
    });
  }
  std::vector<std::uint32_t> seen(kProducers, 0);
  std::vector<TubEntry> out;
  std::uint64_t total = 0;
  while (total < static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    out.clear();
    if (tub.drain(out) == 0) {
      tub.wait_nonempty();
      continue;
    }
    for (const TubEntry& e : out) {
      const std::uint32_t lane = e.id >> 24;
      const std::uint32_t seq = e.id & 0xFFFFFF;
      ASSERT_LT(lane, kProducers);
      ASSERT_EQ(seq, seen[lane]) << "lane " << lane;
      ++seen[lane];
    }
    total += out.size();
  }
  for (auto& p : producers) p.join();
  const TubStats st = tub.stats();
  EXPECT_EQ(st.entries_published,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  std::vector<TubEntry> rest;
  EXPECT_EQ(tub.drain(rest), 0u);
}

}  // namespace
}  // namespace tflux::runtime
