// Tests for the DDMCPP preprocessor: directive parsing, for-header
// extraction, validation errors, and code generation for all three
// back-ends (including an in-process execution of a parsed program
// through the builder path the generated code uses).
#include <gtest/gtest.h>

#include <string>

#include "core/error.h"
#include "ddmcpp/codegen.h"
#include "ddmcpp/parser.h"

namespace tflux::ddmcpp {
namespace {

const char kMinimal[] = R"(
#pragma ddm startprogram
int x = 0;
#pragma ddm thread 1
x = 42;
#pragma ddm endthread
#pragma ddm endprogram
)";

TEST(DdmcppParserTest, MinimalProgram) {
  const ProgramIR ir = parse(kMinimal);
  EXPECT_EQ(ir.kernels, 4u);  // default
  ASSERT_EQ(ir.blocks.size(), 1u);
  ASSERT_EQ(ir.blocks[0].threads.size(), 1u);
  const ThreadIR& t = ir.blocks[0].threads[0];
  EXPECT_EQ(t.id, 1u);
  EXPECT_FALSE(t.is_loop);
  EXPECT_NE(t.body.find("x = 42;"), std::string::npos);
  EXPECT_NE(ir.globals.find("int x = 0;"), std::string::npos);
}

TEST(DdmcppParserTest, StartProgramClauses) {
  const ProgramIR ir = parse(R"(
#pragma ddm startprogram kernels 7 name myprog
#pragma ddm thread 1
;
#pragma ddm endthread
#pragma ddm endprogram
)");
  EXPECT_EQ(ir.kernels, 7u);
  EXPECT_EQ(ir.name, "myprog");
}

TEST(DdmcppParserTest, PreludeKeptVerbatim) {
  const ProgramIR ir = parse(std::string("#include <cstdio>\n") + kMinimal);
  EXPECT_NE(ir.prelude.find("#include <cstdio>"), std::string::npos);
}

TEST(DdmcppParserTest, DependsAndKernelClauses) {
  const ProgramIR ir = parse(R"(
#pragma ddm startprogram
#pragma ddm thread 1 kernel 2
;
#pragma ddm endthread
#pragma ddm thread 5 depends(1)
;
#pragma ddm endthread
#pragma ddm thread 9 depends(1, 5) kernel 0
;
#pragma ddm endthread
#pragma ddm endprogram
)");
  const auto& threads = ir.blocks[0].threads;
  ASSERT_EQ(threads.size(), 3u);
  EXPECT_EQ(threads[0].kernel, 2u);
  EXPECT_EQ(threads[1].depends, (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(threads[2].depends, (std::vector<std::uint32_t>{1, 5}));
  EXPECT_EQ(threads[2].kernel, 0u);
}

TEST(DdmcppParserTest, ForThreadParsesCanonicalHeader) {
  const ProgramIR ir = parse(R"(
#pragma ddm startprogram
#pragma ddm for thread 3 unroll 16
for (int i = 2; i < 100; i++) {
  work(i);
}
#pragma ddm endfor
#pragma ddm endprogram
)");
  const ThreadIR& t = ir.blocks[0].threads[0];
  EXPECT_TRUE(t.is_loop);
  EXPECT_EQ(t.loop_var, "i");
  EXPECT_EQ(t.loop_var_type, "int");
  EXPECT_EQ(t.begin_expr, "2");
  EXPECT_EQ(t.end_expr, "100");
  EXPECT_EQ(t.step_expr, "1");
  EXPECT_EQ(t.unroll, 16u);
  EXPECT_NE(t.body.find("work(i);"), std::string::npos);
}

TEST(DdmcppParserTest, ForThreadWithStride) {
  const ProgramIR ir = parse(R"(
#pragma ddm startprogram
#pragma ddm for thread 1
for (long j = 0; j < n; j += 4) sink(j);
#pragma ddm endfor
#pragma ddm endprogram
)");
  const ThreadIR& t = ir.blocks[0].threads[0];
  EXPECT_EQ(t.loop_var, "j");
  EXPECT_EQ(t.loop_var_type, "long");
  EXPECT_EQ(t.step_expr, "4");
  EXPECT_EQ(t.end_expr, "n");
  EXPECT_NE(t.body.find("sink(j);"), std::string::npos);
}

TEST(DdmcppParserTest, ExplicitBlocksPartitionThreads) {
  const ProgramIR ir = parse(R"(
#pragma ddm startprogram
#pragma ddm block 0
#pragma ddm thread 1
;
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm block 1
#pragma ddm thread 2
;
#pragma ddm endthread
#pragma ddm endblock
#pragma ddm endprogram
)");
  ASSERT_EQ(ir.blocks.size(), 2u);
  EXPECT_EQ(ir.blocks[0].threads[0].id, 1u);
  EXPECT_EQ(ir.blocks[1].threads[0].id, 2u);
}

TEST(DdmcppParserTest, SharedDirective) {
  const ProgramIR ir = parse(R"(
#pragma ddm startprogram
#pragma ddm shared a, b
#pragma ddm shared c
#pragma ddm thread 1
;
#pragma ddm endthread
#pragma ddm endprogram
)");
  EXPECT_EQ(ir.shared_vars, (std::vector<std::string>{"a", "b", "c"}));
}

// --- error cases -----------------------------------------------------------

TEST(DdmcppParserTest, Errors) {
  // no startprogram
  EXPECT_THROW(parse("int x;\n"), core::TFluxError);
  // missing endprogram
  EXPECT_THROW(parse("#pragma ddm startprogram\n#pragma ddm thread 1\n;\n"
                     "#pragma ddm endthread\n"),
               core::TFluxError);
  // duplicate thread id
  EXPECT_THROW(parse(R"(
#pragma ddm startprogram
#pragma ddm thread 1
;
#pragma ddm endthread
#pragma ddm thread 1
;
#pragma ddm endthread
#pragma ddm endprogram
)"),
               core::TFluxError);
  // depends on undeclared thread
  EXPECT_THROW(parse(R"(
#pragma ddm startprogram
#pragma ddm thread 2 depends(1)
;
#pragma ddm endthread
#pragma ddm endprogram
)"),
               core::TFluxError);
  // unknown directive
  EXPECT_THROW(parse("#pragma ddm startprogram\n#pragma ddm bogus\n"),
               core::TFluxError);
  // endfor closing a plain thread
  EXPECT_THROW(parse(R"(
#pragma ddm startprogram
#pragma ddm thread 1
;
#pragma ddm endfor
#pragma ddm endprogram
)"),
               core::TFluxError);
  // malformed for header (condition not strict <)
  EXPECT_THROW(parse(R"(
#pragma ddm startprogram
#pragma ddm for thread 1
for (int i = 0; i != 10; i++) x();
#pragma ddm endfor
#pragma ddm endprogram
)"),
               core::TFluxError);
  // unroll on a plain thread
  EXPECT_THROW(parse(R"(
#pragma ddm startprogram
#pragma ddm thread 1 unroll 4
;
#pragma ddm endthread
#pragma ddm endprogram
)"),
               core::TFluxError);
  // no threads at all
  EXPECT_THROW(parse("#pragma ddm startprogram\n#pragma ddm endprogram\n"),
               core::TFluxError);
}

// --- codegen ---------------------------------------------------------------

TEST(DdmcppCodegenTest, TargetNames) {
  EXPECT_EQ(parse_target("soft"), Target::kSoft);
  EXPECT_EQ(parse_target("hard"), Target::kHard);
  EXPECT_EQ(parse_target("cell"), Target::kCell);
  EXPECT_THROW(parse_target("gpu"), core::TFluxError);
}

TEST(DdmcppCodegenTest, SoftTargetEmitsRuntimeDriver) {
  const std::string code =
      generate(parse(kMinimal), {Target::kSoft, true});
  EXPECT_NE(code.find("#include \"runtime/runtime.h\""), std::string::npos);
  EXPECT_NE(code.find("tflux::runtime::Runtime"), std::string::npos);
  EXPECT_NE(code.find("ddm_build_program"), std::string::npos);
  EXPECT_NE(code.find("void ddm_thread_1"), std::string::npos);
  EXPECT_NE(code.find("int main()"), std::string::npos);
}

TEST(DdmcppCodegenTest, HardAndCellTargetsEmitMachineDrivers) {
  const std::string hard = generate(parse(kMinimal), {Target::kHard, true});
  EXPECT_NE(hard.find("tflux::machine::Machine"), std::string::npos);
  EXPECT_NE(hard.find("bagle_sparc"), std::string::npos);
  const std::string cell = generate(parse(kMinimal), {Target::kCell, true});
  EXPECT_NE(cell.find("tflux::cell::CellMachine"), std::string::npos);
  EXPECT_NE(cell.find("ps3_cell"), std::string::npos);
}

TEST(DdmcppParserTest, CyclesAndRangeClauses) {
  const ProgramIR ir = parse(R"(
#pragma ddm startprogram
#pragma ddm thread 1 cycles(5000) reads(4096:1024) writes(8192:256:stream)
;
#pragma ddm endthread
#pragma ddm for thread 2 cycles(100)
for (int i = 0; i < 4; i++) ;
#pragma ddm endfor
#pragma ddm endprogram
)");
  const ThreadIR& t = ir.blocks[0].threads[0];
  EXPECT_EQ(t.cycles, 5000u);
  ASSERT_EQ(t.ranges.size(), 2u);
  EXPECT_EQ(t.ranges[0].addr, 4096u);
  EXPECT_EQ(t.ranges[0].bytes, 1024u);
  EXPECT_FALSE(t.ranges[0].write);
  EXPECT_FALSE(t.ranges[0].stream);
  EXPECT_EQ(t.ranges[1].addr, 8192u);
  EXPECT_TRUE(t.ranges[1].write);
  EXPECT_TRUE(t.ranges[1].stream);
  EXPECT_EQ(ir.blocks[0].threads[1].cycles, 100u);
}

TEST(DdmcppParserTest, RangeClauseOnLoopThreadRejected) {
  EXPECT_THROW(parse(R"(
#pragma ddm startprogram
#pragma ddm for thread 1 reads(0:64)
for (int i = 0; i < 4; i++) ;
#pragma ddm endfor
#pragma ddm endprogram
)"),
               core::TFluxError);
}

TEST(DdmcppCodegenTest, FootprintClausesEmitted) {
  const std::string code = generate(parse(R"(
#pragma ddm startprogram
#pragma ddm thread 1 cycles(5000) reads(4096:1024)
;
#pragma ddm endthread
#pragma ddm for thread 2 cycles(100) unroll 8
for (int i = 0; i < 64; i++) ;
#pragma ddm endfor
#pragma ddm endprogram
)"),
                                    {Target::kHard, true});
  EXPECT_NE(code.find("ddm_fp.compute(5000ull)"), std::string::npos);
  EXPECT_NE(code.find("ddm_fp.read(4096ull, 1024u, false)"),
            std::string::npos);
  EXPECT_NE(code.find("ddm_chunk.size() * 100ull"), std::string::npos);
}

TEST(DdmcppCodegenTest, KernelsOverride) {
  CodegenOptions options;
  options.target = Target::kSoft;
  options.kernels_override = 9;
  const std::string code = generate(parse(kMinimal), options);
  EXPECT_NE(code.find("ddm_kernels = 9;"), std::string::npos);
}

TEST(DdmcppCodegenTest, NoMainSuppressesDriver) {
  const std::string code =
      generate(parse(kMinimal), {Target::kSoft, false});
  EXPECT_EQ(code.find("int main()"), std::string::npos);
  EXPECT_NE(code.find("ddm_build_program"), std::string::npos);
}

TEST(DdmcppCodegenTest, LoopThreadEmitsChunking) {
  const std::string code = generate(parse(R"(
#pragma ddm startprogram
#pragma ddm for thread 1 unroll 8
for (int i = 0; i < 64; i++) g(i);
#pragma ddm endfor
#pragma ddm endprogram
)"),
                                    {Target::kSoft, true});
  EXPECT_NE(code.find("chunk_iterations"), std::string::npos);
  EXPECT_NE(code.find("8u"), std::string::npos);
  EXPECT_NE(code.find("ddm_iter_begin"), std::string::npos);
}

TEST(DdmcppCodegenTest, DependsEmitsRangeArcsPerProducer) {
  // A dependency on a loop DThread covers all its chunk instances;
  // chunk ids are consecutive by construction, so each producer
  // instance gets one range arc over the consumer's instances rather
  // than N unit arcs.
  const std::string code = generate(parse(R"(
#pragma ddm startprogram
#pragma ddm for thread 1
for (int i = 0; i < 4; i++) a(i);
#pragma ddm endfor
#pragma ddm thread 2 depends(1)
b();
#pragma ddm endthread
#pragma ddm endprogram
)"),
                                    {Target::kSoft, true});
  EXPECT_NE(code.find("ddm_builder.add_arc_range(ddm_p, ddm_ids["),
            std::string::npos);
  EXPECT_EQ(code.find("ddm_builder.add_arc(ddm_p"), std::string::npos);
}

TEST(DdmcppCodegenTest, KernelPinningEmitted) {
  const std::string code = generate(parse(R"(
#pragma ddm startprogram
#pragma ddm thread 1 kernel 3
;
#pragma ddm endthread
#pragma ddm endprogram
)"),
                                    {Target::kSoft, true});
  EXPECT_NE(code.find(", 3));"), std::string::npos);
}

}  // namespace
}  // namespace tflux::ddmcpp
