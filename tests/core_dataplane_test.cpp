// SharedVariableBuffer data-plane tests: footprint overlap (including
// the zero-byte-range guarantee), forward-run construction over
// same-block and cross-block arcs, affinity scoring and dispatch
// accounting, plus a simulated-machine integration pass proving the
// TsuState counters stay internally consistent under every policy.
#include "core/dataplane.h"

#include <gtest/gtest.h>

#include "apps/susan_pipeline.h"
#include "core/builder.h"
#include "core/topology.h"
#include "machine/config.h"
#include "machine/machine.h"

namespace tflux::core {
namespace {

// ---------------------------------------------------------------------------
// footprint_overlap_bytes
// ---------------------------------------------------------------------------

TEST(FootprintOverlapTest, IntersectsWriteAgainstReadRanges) {
  Footprint w;
  w.write(0x1000, 100);
  Footprint r;
  r.read(0x1000 + 40, 100);
  EXPECT_EQ(footprint_overlap_bytes(w, r), 60u);
}

TEST(FootprintOverlapTest, IgnoresDirectionMismatches) {
  Footprint w;
  w.read(0x1000, 100);  // producer *reads* here - not a contribution
  Footprint r;
  r.read(0x1000, 100);
  EXPECT_EQ(footprint_overlap_bytes(w, r), 0u);

  Footprint w2;
  w2.write(0x1000, 100);
  Footprint r2;
  r2.write(0x1000, 100);  // consumer *writes* here - not an input
  EXPECT_EQ(footprint_overlap_bytes(w2, r2), 0u);
}

TEST(FootprintOverlapTest, ZeroByteRangesContributeNothing) {
  Footprint w;
  w.write(0x1000, 0);   // legal (ddmlint warns), but no payload
  w.write(0x2000, 64);
  Footprint r;
  r.read(0x1000, 0);
  r.read(0x2000, 64);
  EXPECT_EQ(footprint_overlap_bytes(w, r), 64u);

  Footprint rz;
  rz.read(0x1000, 0);   // consumer reads only the empty range
  EXPECT_EQ(footprint_overlap_bytes(w, rz), 0u);
}

TEST(FootprintOverlapTest, SumsOverMultipleRangePairs) {
  Footprint w;
  w.write(0x1000, 50);
  w.write(0x3000, 50);
  Footprint r;
  r.read(0x1000, 200);
  r.read(0x3000 + 25, 10);
  EXPECT_EQ(footprint_overlap_bytes(w, r), 60u);
}

// ---------------------------------------------------------------------------
// Static tables: contributions and forward runs.
// ---------------------------------------------------------------------------

Program one_block_fanout() {
  // p (id 0) -> c1, c2, c3 (ids 1-3, consecutive -> one consumer run).
  ProgramBuilder b("fanout");
  const BlockId blk = b.add_block();
  Footprint wp;
  wp.write(0x1000, 300);
  const ThreadId p = b.add_thread(blk, "p", {}, std::move(wp));
  for (int i = 0; i < 3; ++i) {
    Footprint rc;
    rc.read(0x1000 + static_cast<SimAddr>(i) * 100, 100);
    const ThreadId c =
        b.add_thread(blk, "c" + std::to_string(i), {}, std::move(rc));
    b.add_arc(p, c);
  }
  return b.build({.num_kernels = 4});
}

TEST(DataPlaneTest, SameBlockRunsCoalesceConsecutiveConsumers) {
  const Program program = one_block_fanout();
  const DataPlane plane(program);

  const auto& runs = plane.forward_runs(0, /*coalesce=*/true);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (ForwardRun{1, 3, 300}));

  const auto& units = plane.forward_runs(0, /*coalesce=*/false);
  ASSERT_EQ(units.size(), 3u);
  for (ThreadId c = 1; c <= 3; ++c) {
    EXPECT_EQ(units[c - 1], (ForwardRun{c, c, 100}));
    const auto& contribs = plane.contributions(c);
    ASSERT_EQ(contribs.size(), 1u);
    EXPECT_EQ(contribs[0], (Contribution{0, 100}));
  }
}

TEST(DataPlaneTest, ZeroPayloadArcsAreDroppedEverywhere) {
  // The producer writes one real range and one zero-byte range; the
  // middle consumer reads only the zero-byte range, so its arc carries
  // nothing: no contribution, no unit forward, and the coalesced run
  // counts only the real payload.
  ProgramBuilder b("zero");
  const BlockId blk = b.add_block();
  Footprint wp;
  wp.write(0x1000, 100);
  wp.write(0x9000, 0);
  const ThreadId p = b.add_thread(blk, "p", {}, std::move(wp));
  Footprint r1;
  r1.read(0x1000, 50);
  const ThreadId c1 = b.add_thread(blk, "c1", {}, std::move(r1));
  Footprint r2;
  r2.read(0x9000, 0);
  const ThreadId c2 = b.add_thread(blk, "c2", {}, std::move(r2));
  b.add_arc(p, c1);
  b.add_arc(p, c2);
  const Program program = b.build({.num_kernels = 2});
  const DataPlane plane(program);

  EXPECT_TRUE(plane.contributions(c2).empty());
  const auto& units = plane.forward_runs(p, /*coalesce=*/false);
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0], (ForwardRun{c1, c1, 50}));
  const auto& runs = plane.forward_runs(p, /*coalesce=*/true);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].bytes, 50u);
}

TEST(DataPlaneTest, CrossBlockRunsSplitAtConsumerBlockBoundaries) {
  // p in block 0; consumers ids 1,2 in block 1 and id 3 in block 2,
  // consecutive ids - a forward never spans two block activations.
  ProgramBuilder b("xblock");
  const BlockId b0 = b.add_block();
  Footprint wp;
  wp.write(0x1000, 300);
  const ThreadId p = b.add_thread(b0, "p", {}, std::move(wp));
  const BlockId b1 = b.add_block();
  std::vector<ThreadId> cs;
  for (int i = 0; i < 2; ++i) {
    Footprint rc;
    rc.read(0x1000 + static_cast<SimAddr>(i) * 100, 100);
    cs.push_back(
        b.add_thread(b1, "c" + std::to_string(i), {}, std::move(rc)));
  }
  const BlockId b2 = b.add_block();
  Footprint rc;
  rc.read(0x1000 + 200, 100);
  cs.push_back(b.add_thread(b2, "c2", {}, std::move(rc)));
  for (ThreadId c : cs) b.add_arc(p, c);
  const Program program = b.build({.num_kernels = 2});
  const DataPlane plane(program);

  const auto& runs = plane.forward_runs(p, /*coalesce=*/true);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (ForwardRun{cs[0], cs[1], 200}));
  EXPECT_EQ(runs[1], (ForwardRun{cs[2], cs[2], 100}));
  // Contributions exist for all three cross-block consumers.
  for (ThreadId c : cs) {
    ASSERT_EQ(plane.contributions(c).size(), 1u);
    EXPECT_EQ(plane.contributions(c)[0].producer, p);
  }
}

// ---------------------------------------------------------------------------
// Dynamic record: scoring and dispatch accounting.
// ---------------------------------------------------------------------------

struct TwoProducerFixture {
  Program program;
  ThreadId p_small = kInvalidThread;  // writes 100 B of c's input
  ThreadId p_large = kInvalidThread;  // writes 200 B of c's input
  ThreadId c = kInvalidThread;

  static TwoProducerFixture make() {
    ProgramBuilder b("score");
    const BlockId b0 = b.add_block();
    Footprint w1;
    w1.write(0x1000, 100);
    const ThreadId p1 = b.add_thread(b0, "p_small", {}, std::move(w1));
    Footprint w2;
    w2.write(0x2000, 200);
    const ThreadId p2 = b.add_thread(b0, "p_large", {}, std::move(w2));
    const BlockId b1 = b.add_block();
    Footprint rc;
    rc.read(0x1000, 100);
    rc.read(0x2000, 200);
    const ThreadId c = b.add_thread(b1, "c", {}, std::move(rc));
    b.add_arc(p1, c);
    b.add_arc(p2, c);
    return {b.build({.num_kernels = 4}), p1, p2, c};
  }
};

TEST(DataPlaneTest, ScoreTracksWarmBytesPerKernel) {
  auto fx = TwoProducerFixture::make();
  const DataPlane plane(fx.program);

  AffinityScore s = plane.score(fx.c);
  EXPECT_EQ(s.best, kInvalidKernel);  // cold: nothing recorded yet
  EXPECT_EQ(s.total_bytes, 0u);

  plane.record_execution(fx.p_small, 2);
  s = plane.score(fx.c);
  EXPECT_EQ(s.best, 2);
  EXPECT_EQ(s.best_bytes, 100u);
  EXPECT_EQ(s.total_bytes, 100u);

  plane.record_execution(fx.p_large, 3);
  s = plane.score(fx.c);
  EXPECT_EQ(s.best, 3);
  EXPECT_EQ(s.best_bytes, 200u);
  EXPECT_EQ(s.total_bytes, 300u);

  // Same kernel executing both: bytes accumulate.
  plane.record_execution(fx.p_small, 3);
  s = plane.score(fx.c);
  EXPECT_EQ(s.best, 3);
  EXPECT_EQ(s.best_bytes, 300u);
}

TEST(DataPlaneTest, ScoreTiesGoToLowestKernel) {
  // Two producers with *equal* payloads on different kernels.
  ProgramBuilder b("tie");
  const BlockId b0 = b.add_block();
  Footprint w1;
  w1.write(0x1000, 100);
  const ThreadId p1 = b.add_thread(b0, "p1", {}, std::move(w1));
  Footprint w2;
  w2.write(0x2000, 100);
  const ThreadId p2 = b.add_thread(b0, "p2", {}, std::move(w2));
  const BlockId b1 = b.add_block();
  Footprint rc;
  rc.read(0x1000, 100);
  rc.read(0x2000, 100);
  const ThreadId c = b.add_thread(b1, "c", {}, std::move(rc));
  b.add_arc(p1, c);
  b.add_arc(p2, c);
  const Program program = b.build({.num_kernels = 4});
  const DataPlane plane(program);

  plane.record_execution(p1, 3);
  plane.record_execution(p2, 1);
  const AffinityScore s = plane.score(c);
  EXPECT_EQ(s.best, 1);  // deterministic tie-break: lowest kernel id
  EXPECT_EQ(s.best_bytes, 100u);
  EXPECT_EQ(s.total_bytes, 200u);

  // Both kernels hold a maximal share: dispatching to either is a hit.
  EXPECT_TRUE(plane.account_dispatch(c, 1).hit);
  EXPECT_TRUE(plane.account_dispatch(c, 3).hit);
  EXPECT_FALSE(plane.account_dispatch(c, 0).hit);
}

TEST(DataPlaneTest, AccountDispatchClassifiesColdHitMiss) {
  auto fx = TwoProducerFixture::make();
  const DataPlane plane(fx.program);

  const auto cold = plane.account_dispatch(fx.c, 0);
  EXPECT_TRUE(cold.cold);
  EXPECT_FALSE(cold.hit);
  EXPECT_EQ(cold.cross_shard_bytes, 0u);

  plane.record_execution(fx.p_small, 0);
  plane.record_execution(fx.p_large, 2);
  const auto hit = plane.account_dispatch(fx.c, 2);
  EXPECT_TRUE(hit.hit);
  EXPECT_FALSE(hit.cold);
  const auto miss = plane.account_dispatch(fx.c, 0);
  EXPECT_FALSE(miss.hit);
  EXPECT_FALSE(miss.cold);
}

TEST(DataPlaneTest, CrossShardBytesFollowTheShardMap) {
  auto fx = TwoProducerFixture::make();
  // 4 kernels, 2 clustered shards: {0,1} and {2,3}.
  const ShardMap shards = ShardMap::clustered(4, 2);
  const DataPlane plane(fx.program, &shards);

  plane.record_execution(fx.p_small, 1);  // shard 0
  plane.record_execution(fx.p_large, 2);  // shard 1

  // Target in shard 1: the small producer's 100 B live across the
  // boundary.
  EXPECT_EQ(plane.account_dispatch(fx.c, 3).cross_shard_bytes, 100u);
  // Target in shard 0: the large producer's 200 B are remote.
  EXPECT_EQ(plane.account_dispatch(fx.c, 0).cross_shard_bytes, 200u);
}

// ---------------------------------------------------------------------------
// Simulated-machine integration: counters stay consistent and the
// ablation really turns the plane off.
// ---------------------------------------------------------------------------

class MachineDataPlaneTest
    : public ::testing::TestWithParam<core::PolicyKind> {};

TEST_P(MachineDataPlaneTest, CountersReconcileUnderEveryPolicy) {
  apps::DdmParams params;
  params.num_kernels = 4;
  const apps::SusanPipeInput in{64, 48, 4, 2};
  apps::AppRun run = apps::build_susan_pipeline(in, params);

  machine::MachineConfig cfg = machine::xeon_soft(4);
  cfg.policy = GetParam();
  machine::Machine m(cfg, run.program);
  const machine::MachineStats st = m.run();

  EXPECT_TRUE(run.validate());
  // Every application dispatch is classified exactly once.
  EXPECT_EQ(st.tsu.affinity_hits + st.tsu.affinity_misses +
                st.tsu.affinity_cold,
            st.threads_executed);
  // The pipeline's cross-block arcs carry real payload.
  EXPECT_GT(st.tsu.forwards, 0u);
  EXPECT_GT(st.tsu.bytes_forwarded, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, MachineDataPlaneTest,
                         ::testing::Values(core::PolicyKind::kFifo,
                                           core::PolicyKind::kLocality,
                                           core::PolicyKind::kAffinity));

TEST(MachineDataPlaneTest, AblationDisablesAllAccounting) {
  apps::DdmParams params;
  params.num_kernels = 4;
  const apps::SusanPipeInput in{64, 48, 4, 2};
  apps::AppRun run = apps::build_susan_pipeline(in, params);

  machine::MachineConfig cfg = machine::xeon_soft(4);
  cfg.policy = core::PolicyKind::kAffinity;  // degrades without the plane
  cfg.dataplane = false;
  machine::Machine m(cfg, run.program);
  const machine::MachineStats st = m.run();

  EXPECT_TRUE(run.validate());
  EXPECT_EQ(st.tsu.forwards, 0u);
  EXPECT_EQ(st.tsu.bytes_forwarded, 0u);
  EXPECT_EQ(st.tsu.affinity_hits, 0u);
  EXPECT_EQ(st.tsu.affinity_misses, 0u);
  EXPECT_EQ(st.tsu.affinity_cold, 0u);
  EXPECT_EQ(st.tsu.cross_shard_bytes, 0u);
}

}  // namespace
}  // namespace tflux::core
