// Tests for the log-bucketed duration histogram.
#include "sim/histogram.h"

#include <gtest/gtest.h>

namespace tflux::sim {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0u);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (core::Cycles v : {10u, 20u, 30u, 40u}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 40u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(HistogramTest, QuantileWithinFactorOfTwo) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(100);  // all in bucket of 100
  const core::Cycles p50 = h.quantile(0.5);
  EXPECT_GE(p50, 64u);
  EXPECT_LE(p50, 128u);
  EXPECT_EQ(h.quantile(0.0), h.quantile(1.0));
}

TEST(HistogramTest, QuantileOrdersAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);
  for (int i = 0; i < 10; ++i) h.add(100000);
  EXPECT_LT(h.quantile(0.5), h.quantile(0.95));
  EXPECT_GE(h.quantile(0.99), 65536u);
}

TEST(HistogramTest, HugeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.add(core::Cycles{1} << 62);
  h.add(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), core::Cycles{1} << 62);
  EXPECT_GE(h.quantile(1.0), 1u);
}

TEST(HistogramTest, SummaryMentionsFields) {
  Histogram h;
  h.add(5);
  const std::string s = h.summary();
  EXPECT_NE(s.find("n=1"), std::string::npos);
  EXPECT_NE(s.find("p95~"), std::string::npos);
}

}  // namespace
}  // namespace tflux::sim
