// Resident multi-program executor tests (runtime/executor.h): one
// long-lived kernel pool serving many independent DDM programs.
//
// What must hold:
//   - Re-running one Runtime warm (the executor's per-partition shape)
//     is deterministic: same dispatch/execution counters every
//     iteration, results validating against the sequential reference,
//     stats.epoch counting iterations.
//   - Concurrent mixed-app admission: every program's results validate
//     and every per-instance guard stays clean while other tenants are
//     in flight.
//   - Per-instance trace scoping: a traced run's ddmtrace replays
//     standalone through the offline checker with EXACT counter
//     reconciliation (its records account for precisely its own
//     instance's dispatches/completions), even though other tenants
//     executed concurrently.
//   - Admission control: capacity errors at submit time, bounded-queue
//     load shedding via try_submit, tenant pinning.
//   - Teardown: the destructor drains in-flight work; futures obtained
//     before destruction are completed, never dangling.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "apps/suite.h"
#include "core/check.h"
#include "core/ddmtrace.h"
#include "core/error.h"
#include "core/executor.h"
#include "runtime/executor.h"
#include "runtime/runtime.h"

namespace tflux {
namespace {

using runtime::Executor;
using runtime::ExecutorOptions;
using runtime::RunRequest;
using runtime::RunResult;

std::shared_ptr<apps::AppRun> make_app(apps::AppKind kind,
                                       std::uint16_t width) {
  apps::DdmParams params;
  params.num_kernels = width;
  params.unroll = 1;
  params.tsu_capacity = 64;
  return std::make_shared<apps::AppRun>(apps::build_app(
      kind, apps::SizeClass::kSmall, apps::Platform::kNative, params));
}

core::ProgramHandle register_app(core::ProgramRegistry& registry,
                                 const std::shared_ptr<apps::AppRun>& app) {
  return registry.add(app->program, app, app->reset, app->name);
}

RunRequest request_for(core::ProgramHandle handle) {
  RunRequest req;
  req.handle = handle;
  return req;
}

TEST(RuntimeRerun, BackToBackRunsAreDeterministic) {
  auto app = make_app(apps::AppKind::kQsort, 2);
  runtime::RuntimeOptions options;
  options.num_kernels = 2;
  runtime::Runtime rt(app->program, options);

  const runtime::RuntimeStats first = rt.run();
  EXPECT_EQ(first.epoch, 1u);
  EXPECT_TRUE(app->validate());

  std::uint64_t executed_first = 0;
  for (const runtime::KernelStats& k : first.kernels) {
    executed_first += k.threads_executed;
  }

  for (std::uint64_t round = 2; round <= 3; ++round) {
    if (app->reset) app->reset();
    const runtime::RuntimeStats st = rt.run();
    EXPECT_EQ(st.epoch, round);
    EXPECT_TRUE(app->validate());
    // Warm re-runs replay the same graph: identical dispatch and
    // execution totals, not merely a passing validation.
    EXPECT_EQ(st.emulator.dispatches, first.emulator.dispatches);
    std::uint64_t executed = 0;
    for (const runtime::KernelStats& k : st.kernels) {
      executed += k.threads_executed;
    }
    EXPECT_EQ(executed, executed_first);
  }
}

TEST(ResidentExecutor, ConcurrentMixedAppsValidateUnderGuard) {
  core::ProgramRegistry registry;
  std::vector<std::shared_ptr<apps::AppRun>> apps;
  std::vector<core::ProgramHandle> handles;
  const apps::AppKind kinds[] = {apps::AppKind::kTrapez,
                                 apps::AppKind::kQsort, apps::AppKind::kFft};
  // Two slots per kind so per-handle serialization still leaves every
  // partition admissible.
  for (int copy = 0; copy < 2; ++copy) {
    for (apps::AppKind kind : kinds) {
      apps.push_back(make_app(kind, 1));
      handles.push_back(register_app(registry, apps.back()));
    }
  }

  ExecutorOptions options;
  options.pool_kernels = 4;
  options.partition_width = 1;
  Executor executor(registry, options);
  EXPECT_EQ(executor.num_tenants(), 4);

  std::vector<std::future<RunResult>> futures;
  for (int i = 0; i < 18; ++i) {
    RunRequest req;
    req.handle = handles[i % handles.size()];
    ASSERT_TRUE(core::parse_guard_spec("sampled:8", req.guard));
    futures.push_back(executor.submit(req));
  }
  for (auto& f : futures) {
    const RunResult result = f.get();
    EXPECT_TRUE(result.guard_clean);
    EXPECT_EQ(result.stats.guard.violations, 0u);
  }
  for (const auto& app : apps) EXPECT_TRUE(app->validate());

  const runtime::ExecutorStats st = executor.stats();
  EXPECT_EQ(st.submitted, 18u);
  EXPECT_EQ(st.completed, 18u);
  EXPECT_EQ(st.latency.count, 18u);
  std::uint64_t runs = 0;
  for (const core::TenantShare& s : st.tenants) runs += s.runs;
  EXPECT_EQ(runs, 18u);
}

TEST(ResidentExecutor, MidFlightTraceReplaysStandalone) {
  core::ProgramRegistry registry;
  auto qsort_app = make_app(apps::AppKind::kQsort, 1);
  auto fft_app = make_app(apps::AppKind::kFft, 1);
  const core::ProgramHandle hq = register_app(registry, qsort_app);
  const core::ProgramHandle hf = register_app(registry, fft_app);

  ExecutorOptions options;
  options.pool_kernels = 2;
  options.partition_width = 1;
  Executor executor(registry, options);

  core::ExecTrace trace;
  std::vector<std::future<RunResult>> futures;
  std::size_t traced_index = 0;
  for (int i = 0; i < 10; ++i) {
    RunRequest req;
    req.handle = (i % 2 == 0) ? hq : hf;
    if (i == 5) {
      req.trace = &trace;
      traced_index = futures.size();
    }
    futures.push_back(executor.submit(req));
  }
  std::vector<RunResult> results;
  for (auto& f : futures) results.push_back(f.get());

  // The traced instance (an fft run) replays standalone: the offline
  // checker sees a complete, self-consistent single-run trace even
  // though nine other instances ran around it.
  const core::CheckReport report =
      core::check_trace(fft_app->program, trace);
  EXPECT_TRUE(report.clean()) << report.to_string(fft_app->program);

  // Exact counter reconciliation: the trace accounts for precisely
  // this instance's work - nothing leaked in from other tenants,
  // nothing leaked out.
  std::uint64_t trace_dispatches = 0;
  std::uint64_t trace_completes = 0;
  for (const core::TraceRecord& r : trace.records) {
    if (r.event == core::TraceEvent::kDispatch) ++trace_dispatches;
    if (r.event == core::TraceEvent::kComplete) ++trace_completes;
  }
  const RunResult& traced = results[traced_index];
  std::uint64_t executed = 0;
  for (const runtime::KernelStats& k : traced.stats.kernels) {
    executed += k.threads_executed;
  }
  EXPECT_EQ(trace_dispatches, traced.stats.emulator.dispatches);
  EXPECT_EQ(trace_completes, executed);
  EXPECT_GT(trace_dispatches, 0u);
}

TEST(ResidentExecutor, TrySubmitShedsOnFullQueue) {
  core::ProgramRegistry registry;
  auto app = make_app(apps::AppKind::kTrapez, 1);
  const core::ProgramHandle handle = register_app(registry, app);

  ExecutorOptions options;
  options.pool_kernels = 1;
  options.partition_width = 1;
  options.queue_capacity = 1;
  options.stage_depth = 1;
  Executor executor(registry, options);

  // One registered program on one partition: the first request runs,
  // the second waits in the queue (its handle is busy), and further
  // requests find the bounded queue full until the first completes.
  std::vector<std::future<RunResult>> futures;
  std::size_t shed = 0;
  for (int i = 0; i < 8; ++i) {
    std::optional<std::future<RunResult>> f = executor.try_submit(request_for(handle));
    if (f.has_value()) {
      futures.push_back(std::move(*f));
    } else {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  for (auto& f : futures) f.get();
  EXPECT_TRUE(app->validate());
  const runtime::ExecutorStats st = executor.stats();
  EXPECT_EQ(st.rejected, shed);
  EXPECT_EQ(st.completed, futures.size());
}

TEST(ResidentExecutor, AdmissionErrors) {
  core::ProgramRegistry registry;
  auto narrow = make_app(apps::AppKind::kQsort, 2);
  auto wide = make_app(apps::AppKind::kQsort, 4);
  const core::ProgramHandle hn = register_app(registry, narrow);
  const core::ProgramHandle hw = register_app(registry, wide);

  ExecutorOptions options;
  options.pool_kernels = 4;
  options.partition_width = 2;
  Executor executor(registry, options);

  // A program built for 4 kernels cannot run on a width-2 slice.
  EXPECT_THROW(executor.submit(request_for(hw)), core::TFluxError);
  // Unknown handle.
  RunRequest bad;
  bad.handle = 99;
  EXPECT_THROW(executor.submit(bad), core::TFluxError);
  // Tenant pin past the partition count.
  RunRequest pinned;
  pinned.handle = hn;
  pinned.tenant = 2;
  EXPECT_THROW(executor.submit(pinned), core::TFluxError);

  // A valid pin runs on exactly that partition.
  pinned.tenant = 1;
  const RunResult result = executor.submit(pinned).get();
  EXPECT_EQ(result.tenant, 1);
  EXPECT_TRUE(narrow->validate());
}

TEST(ResidentExecutor, DestructorDrainsOutstandingWork) {
  core::ProgramRegistry registry;
  auto a = make_app(apps::AppKind::kQsort, 1);
  auto b = make_app(apps::AppKind::kFft, 1);
  const core::ProgramHandle ha = register_app(registry, a);
  const core::ProgramHandle hb = register_app(registry, b);

  std::vector<std::future<RunResult>> futures;
  {
    ExecutorOptions options;
    options.pool_kernels = 2;
    options.partition_width = 1;
    Executor executor(registry, options);
    for (int i = 0; i < 6; ++i) {
      futures.push_back(executor.submit(request_for(i % 2 == 0 ? ha : hb)));
    }
    // Destructor runs here with work still in flight: it must drain,
    // not abandon.
  }
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_TRUE(f.get().guard_clean);
  }
  EXPECT_TRUE(a->validate());
  EXPECT_TRUE(b->validate());
}

TEST(ResidentExecutor, StatsEpochReset) {
  core::ProgramRegistry registry;
  auto app = make_app(apps::AppKind::kFft, 1);
  const core::ProgramHandle handle = register_app(registry, app);

  ExecutorOptions options;
  options.pool_kernels = 2;
  options.partition_width = 1;
  Executor executor(registry, options);

  for (int i = 0; i < 3; ++i) executor.submit(request_for(handle)).get();
  runtime::ExecutorStats st = executor.stats();
  EXPECT_EQ(st.epoch, 1u);
  EXPECT_EQ(st.completed, 3u);

  executor.reset_stats_epoch();
  st = executor.stats();
  EXPECT_EQ(st.epoch, 2u);
  EXPECT_EQ(st.submitted, 0u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(st.latency.count, 0u);
  for (const core::TenantShare& s : st.tenants) EXPECT_EQ(s.runs, 0u);

  // The next round is accounted against the fresh epoch.
  executor.submit(request_for(handle)).get();
  st = executor.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.latency.count, 1u);
}

}  // namespace
}  // namespace tflux
