// Round-trip and error tests for the ddmgraph text format.
#include "core/graph_io.h"

#include <gtest/gtest.h>

#include "core/analysis.h"
#include "core/builder.h"
#include "core/error.h"
#include "core/scheduler.h"

namespace tflux::core {
namespace {

Program make_sample() {
  ProgramBuilder b("sample");
  const BlockId b0 = b.add_block();
  Footprint fa;
  fa.compute(100).read(0x1000, 64).write(0x2000, 128, /*stream=*/true);
  const ThreadId a = b.add_thread(b0, "a", {}, std::move(fa), 1);
  Footprint fb;
  fb.compute(200);
  const ThreadId x = b.add_thread(b0, "x", {}, std::move(fb));
  b.add_arc(a, x);
  const BlockId b1 = b.add_block();
  const ThreadId y = b.add_thread(b1, "y", {});
  b.add_arc(a, y);  // cross-block
  return b.build(BuildOptions{.num_kernels = 2});
}

TEST(GraphIoTest, SaveEmitsExpectedDirectives) {
  const std::string text = save_graph(make_sample());
  EXPECT_NE(text.find("ddmgraph 1"), std::string::npos);
  EXPECT_NE(text.find("program sample"), std::string::npos);
  EXPECT_NE(text.find("thread a compute 100 home 1"), std::string::npos);
  EXPECT_NE(text.find("read 4096 64"), std::string::npos);
  EXPECT_NE(text.find("write 8192 128 stream"), std::string::npos);
  EXPECT_NE(text.find("arc 0 1"), std::string::npos);
  EXPECT_NE(text.find("arc 0 2"), std::string::npos);  // cross-block
}

TEST(GraphIoTest, RoundTripPreservesStructure) {
  Program original = make_sample();
  Program loaded =
      load_graph(save_graph(original), BuildOptions{.num_kernels = 2});

  EXPECT_EQ(loaded.num_app_threads(), original.num_app_threads());
  EXPECT_EQ(loaded.num_blocks(), original.num_blocks());
  EXPECT_EQ(loaded.cross_block_arcs().size(),
            original.cross_block_arcs().size());
  for (ThreadId t = 0; t < original.num_app_threads(); ++t) {
    EXPECT_EQ(loaded.thread(t).label, original.thread(t).label);
    EXPECT_EQ(loaded.thread(t).footprint.compute_cycles,
              original.thread(t).footprint.compute_cycles);
    EXPECT_EQ(loaded.thread(t).footprint.ranges,
              original.thread(t).footprint.ranges);
    EXPECT_EQ(loaded.thread(t).ready_count_init,
              original.thread(t).ready_count_init);
    EXPECT_EQ(loaded.thread(t).home_kernel, original.thread(t).home_kernel);
  }
  // Analysis agrees, and the loaded program executes.
  const GraphAnalysis oa = analyze(original);
  const GraphAnalysis la = analyze(loaded);
  EXPECT_EQ(la.critical_path_cycles, oa.critical_path_cycles);
  EXPECT_EQ(la.level_widths, oa.level_widths);
  ReferenceScheduler sched(loaded, 2);
  EXPECT_NO_THROW(sched.run());
}

TEST(GraphIoTest, CommentsAndBlanksIgnored) {
  const std::string text =
      "# a comment\n"
      "ddmgraph 1\n"
      "\n"
      "program p  # trailing comment\n"
      "block\n"
      "thread t compute 5\n";
  Program p = load_graph(text);
  EXPECT_EQ(p.num_app_threads(), 1u);
  EXPECT_EQ(p.thread(0).footprint.compute_cycles, 5u);
}

TEST(GraphIoTest, Errors) {
  EXPECT_THROW(load_graph(""), TFluxError);
  EXPECT_THROW(load_graph("ddmgraph 2\n"), TFluxError);
  EXPECT_THROW(load_graph("block\n"), TFluxError);  // before magic
  EXPECT_THROW(load_graph("ddmgraph 1\nthread t\n"), TFluxError);
  EXPECT_THROW(load_graph("ddmgraph 1\nread 0 64\n"), TFluxError);
  EXPECT_THROW(load_graph("ddmgraph 1\nblock\nthread t bogus 4\n"),
               TFluxError);
  EXPECT_THROW(load_graph("ddmgraph 1\nblock\nthread t\narc 0 9\n"),
               TFluxError);
  EXPECT_THROW(
      load_graph("ddmgraph 1\nblock\nthread t\nread 0 64 sideways\n"),
      TFluxError);
}

TEST(GraphIoTest, LoadedGraphValidatesThroughBuilder) {
  // A cyclic saved graph must be rejected by ProgramBuilder validation.
  const std::string text =
      "ddmgraph 1\nblock\nthread a\nthread b\narc 0 1\narc 1 0\n";
  EXPECT_THROW(load_graph(text), TFluxError);
}

}  // namespace
}  // namespace tflux::core
