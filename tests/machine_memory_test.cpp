// MESI protocol + bus timing tests for the coherent memory system.
#include "machine/memory_system.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace tflux::machine {
namespace {

MachineConfig small_config(std::uint16_t cores) {
  MachineConfig c;
  c.num_kernels = cores;
  c.l1 = CacheGeometry{512, 64, 2, 2, 1};        // 4 sets x 2 ways
  c.l2 = CacheGeometry{2048, 128, 2, 20, 20};    // 8 sets x 2 ways
  c.bus = BusConfig{4, 8};
  c.memory_latency = 200;
  c.c2c_latency = 40;
  return c;
}

TEST(MemorySystemTest, ColdReadFetchesExclusive) {
  auto cfg = small_config(2);
  MemorySystem mem(cfg, 2);
  const Cycles done = mem.access_line(0, 0, false, 0);
  // l2 detect (20) + bus (4+8) + memory (200).
  EXPECT_EQ(done, 20u + 12u + 200u);
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kExclusive);
  EXPECT_TRUE(mem.l1_resident(0, 0));
  EXPECT_EQ(mem.stats().mem_fetches, 1u);
}

TEST(MemorySystemTest, L1HitIsCheap) {
  auto cfg = small_config(1);
  MemorySystem mem(cfg, 1);
  mem.access_line(0, 0, false, 0);
  const Cycles t0 = 1000;
  EXPECT_EQ(mem.access_line(0, 0, false, t0), t0 + cfg.l1.read_latency);
  EXPECT_EQ(mem.stats().l1_hits, 1u);
}

TEST(MemorySystemTest, L2HitAfterL1Eviction) {
  auto cfg = small_config(1);
  MemorySystem mem(cfg, 1);
  // L1 set 0 holds addresses {0, 256}; the third conflicting line
  // evicts - but L2 (128B lines, 8 sets... 2KB) still holds line 0.
  mem.access_line(0, 0, false, 0);
  mem.access_line(0, 256, false, 0);
  mem.access_line(0, 512, false, 0);
  EXPECT_FALSE(mem.l1_resident(0, 0));
  const Cycles t0 = 10000;
  EXPECT_EQ(mem.access_line(0, 0, false, t0), t0 + cfg.l2.read_latency);
  EXPECT_EQ(mem.stats().l2_hits, 1u);
}

TEST(MemorySystemTest, SecondReaderDemotesToShared) {
  auto cfg = small_config(2);
  MemorySystem mem(cfg, 2);
  mem.access_line(0, 0, false, 0);
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kExclusive);
  mem.access_line(1, 0, false, 1000);
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kShared);
  EXPECT_EQ(mem.l2_state(1, 0), Mesi::kShared);
}

TEST(MemorySystemTest, DirtyLineSuppliedCacheToCache) {
  auto cfg = small_config(2);
  MemorySystem mem(cfg, 2);
  mem.access_line(0, 0, true, 0);  // core 0 owns M
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kModified);
  const Cycles t0 = 1000;
  const Cycles done = mem.access_line(1, 0, false, t0);
  // Supplied by peer: c2c (40) beats memory (200).
  EXPECT_EQ(done, t0 + 20 + 12 + 40);
  EXPECT_EQ(mem.stats().c2c_transfers, 1u);
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kShared);
  EXPECT_EQ(mem.l2_state(1, 0), Mesi::kShared);
}

TEST(MemorySystemTest, WriteToExclusiveIsSilentPromotion) {
  auto cfg = small_config(2);
  MemorySystem mem(cfg, 2);
  mem.access_line(0, 0, false, 0);  // E
  const auto before = mem.stats().bus_transactions;
  const Cycles t0 = 1000;
  EXPECT_EQ(mem.access_line(0, 0, true, t0), t0 + cfg.l1.write_latency);
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kModified);
  EXPECT_EQ(mem.stats().bus_transactions, before);  // no bus traffic
}

TEST(MemorySystemTest, WriteToSharedUpgradesAndInvalidatesPeers) {
  auto cfg = small_config(3);
  MemorySystem mem(cfg, 3);
  mem.access_line(0, 0, false, 0);
  mem.access_line(1, 0, false, 500);
  mem.access_line(2, 0, false, 900);
  const Cycles done = mem.access_line(0, 0, true, 2000);
  EXPECT_GT(done, 2000u + cfg.l1.write_latency);  // paid the upgrade
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kModified);
  EXPECT_EQ(mem.l2_state(1, 0), Mesi::kInvalid);
  EXPECT_EQ(mem.l2_state(2, 0), Mesi::kInvalid);
  EXPECT_FALSE(mem.l1_resident(1, 0));  // back-invalidated
  EXPECT_EQ(mem.stats().upgrades, 1u);
  EXPECT_EQ(mem.stats().invalidations, 2u);
}

TEST(MemorySystemTest, WriteMissInvalidatesDirtyPeer) {
  auto cfg = small_config(2);
  MemorySystem mem(cfg, 2);
  mem.access_line(0, 0, true, 0);  // core 0: M
  mem.access_line(1, 0, true, 1000);
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kInvalid);
  EXPECT_EQ(mem.l2_state(1, 0), Mesi::kModified);
  EXPECT_GE(mem.stats().writebacks, 1u);
}

TEST(MemorySystemTest, BusSerializesConcurrentMisses) {
  auto cfg = small_config(2);
  MemorySystem mem(cfg, 2);
  // Two different lines, same instant: the second transaction must
  // wait for the first's bus occupancy (12 cycles).
  const Cycles d0 = mem.access_line(0, 0, false, 0);
  const Cycles d1 = mem.access_line(1, 4096, false, 0);
  EXPECT_EQ(d0, 20u + 12 + 200);
  EXPECT_EQ(d1, d0 + 12);  // bus wait shifts completion by one occupancy
  EXPECT_GT(mem.stats().bus_wait_cycles, 0u);
}

TEST(MemorySystemTest, L2EvictionBackInvalidatesL1AndWritesBack) {
  auto cfg = small_config(1);
  MemorySystem mem(cfg, 1);
  // L2: 8 sets... 2048/(128*2) = 8 sets; set stride = 8*128 = 1024.
  mem.access_line(0, 0, true, 0);         // M in L2 line 0
  mem.access_line(0, 1024, false, 1000);  // same L2 set
  mem.access_line(0, 2048, false, 2000);  // evicts LRU (line 0, dirty)
  EXPECT_EQ(mem.l2_state(0, 0), Mesi::kInvalid);
  EXPECT_FALSE(mem.l1_resident(0, 0));
  EXPECT_GE(mem.stats().writebacks, 1u);
}

TEST(MemorySystemTest, InvalidGeometryRejected) {
  auto cfg = small_config(1);
  cfg.l2.line_bytes = 32;  // smaller than L1's 64
  EXPECT_THROW(MemorySystem(cfg, 1), core::TFluxError);
  EXPECT_THROW(MemorySystem(small_config(1), 0), core::TFluxError);
}

TEST(MemorySystemTest, StatsAccumulateConsistently) {
  auto cfg = small_config(2);
  MemorySystem mem(cfg, 2);
  for (int i = 0; i < 10; ++i) {
    mem.access_line(0, static_cast<SimAddr>(i) * 64, false, 0);
    mem.access_line(1, static_cast<SimAddr>(i) * 64, i % 2 == 0, 0);
  }
  const auto s = mem.stats();
  EXPECT_EQ(s.accesses(), 20u);
  EXPECT_EQ(s.l1_hits + s.l1_misses, 20u);
  EXPECT_GT(s.bus_busy_cycles, 0u);
}

}  // namespace
}  // namespace tflux::machine
