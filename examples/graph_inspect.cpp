// Graph inspection tooling: build the paper's QSORT DDM program,
// print its static analysis (critical path, average parallelism -
// QSORT's two-level merge tree is exactly why its speedup saturates in
// Figures 5-7), export the Synchronization Graph as Graphviz DOT, and
// dump a Chrome-trace of a simulated execution.
//
//   $ ./graph_inspect
//   ... writes qsort_graph.dot and qsort_trace.json ...
//   $ dot -Tsvg qsort_graph.dot -o qsort_graph.svg
//   (open qsort_trace.json in chrome://tracing or ui.perfetto.dev)
#include <cstdio>
#include <fstream>

#include "apps/suite.h"
#include "core/analysis.h"
#include "core/verify.h"
#include "machine/config.h"
#include "machine/machine.h"
#include "sim/trace.h"

int main() {
  using namespace tflux;

  apps::DdmParams params;
  params.num_kernels = 8;
  apps::AppRun run =
      apps::build_app(apps::AppKind::kQsort, apps::SizeClass::kMedium,
                      apps::Platform::kSimulated, params);

  // --- ddmlint: static verification ------------------------------------
  core::VerifyOptions verify_options;
  verify_options.tsu_capacity = params.tsu_capacity;
  verify_options.num_kernels = params.num_kernels;
  const core::VerifyReport lint = core::verify(run.program, verify_options);
  std::printf("lint: %s\n",
              lint.clean() ? "clean (0 findings)"
                           : lint.to_string(run.program).c_str());
  if (lint.has_errors()) return 1;

  // --- static analysis -------------------------------------------------
  const core::GraphAnalysis a = core::analyze(run.program);
  std::printf("QSORT (Medium) synchronization graph:\n");
  std::printf("  DThreads:             %u (+ inlet/outlet per block)\n",
              run.program.num_app_threads());
  std::printf("  critical path:        %u DThreads, %llu compute cycles\n",
              a.critical_path_threads,
              static_cast<unsigned long long>(a.critical_path_cycles));
  std::printf("  total compute:        %llu cycles\n",
              static_cast<unsigned long long>(a.total_compute_cycles));
  std::printf("  average parallelism:  %.2f  <- the work/span bound that "
              "caps QSORT's speedup\n",
              a.average_parallelism);
  std::printf("  peak width:           %u concurrent DThreads\n",
              a.max_width());

  // --- DOT export -------------------------------------------------------
  core::DotOptions dot_options;
  dot_options.show_inlet_outlet = true;
  std::ofstream("qsort_graph.dot") << core::to_dot(run.program, dot_options);
  std::printf("wrote qsort_graph.dot\n");

  // --- traced simulated execution ---------------------------------------
  sim::Trace trace;
  machine::Machine m(machine::bagle_sparc(8), run.program,
                     /*invoke_bodies=*/false);
  m.attach_trace(&trace);
  const machine::MachineStats st = m.run();
  std::ofstream("qsort_trace.json") << trace.to_chrome_json();
  std::printf("wrote qsort_trace.json (%zu spans, %llu cycles total)\n",
              trace.size(),
              static_cast<unsigned long long>(st.total_cycles));
  return 0;
}
