// Platform tour: the paper's core claim is virtualization - "the same
// programming model independently of the architecture". This example
// builds ONE DDM program (the Table-1 SUSAN image-smoothing workload)
// and executes the very same Program object on every TFlux platform in
// this repository:
//
//   1. the reference scheduler      (debugging oracle)
//   2. TFluxSoft: native std::threads + software TSU Emulator
//   3. TFluxHard: simulated Bagle-like multicore, hardware TSU
//   4. TFluxCell: simulated PS3 Cell/BE, TSU on the PPE
//
// Each run validates its results against the sequential reference.
#include <cstdio>

#include "apps/suite.h"
#include "cell/cell_machine.h"
#include "core/scheduler.h"
#include "machine/config.h"
#include "machine/machine.h"
#include "runtime/runtime.h"

namespace {

tflux::apps::AppRun build() {
  tflux::apps::DdmParams params;
  params.num_kernels = 4;
  params.unroll = 16;
  return tflux::apps::build_app(tflux::apps::AppKind::kSusan,
                                tflux::apps::SizeClass::kSmall,
                                tflux::apps::Platform::kSimulated, params);
}

void report(const char* platform, bool ok, const char* extra) {
  std::printf("  %-44s %s %s\n", platform, ok ? "results OK " : "WRONG!",
              extra);
}

}  // namespace

int main() {
  using namespace tflux;
  std::printf("SUSAN (Small, 256x288) on every TFlux platform:\n");
  char buf[64];

  {
    apps::AppRun run = build();
    core::ReferenceScheduler sched(run.program, 4);
    const auto r = sched.run();
    std::snprintf(buf, sizeof buf, "(%zu DThreads)", r.records.size());
    report("reference scheduler (4 virtual kernels)", run.validate(), buf);
  }
  {
    apps::AppRun run = build();
    runtime::Runtime rt(run.program,
                        runtime::RuntimeOptions{.num_kernels = 4});
    const auto st = rt.run();
    std::snprintf(buf, sizeof buf, "(%.3f ms wall)",
                  st.wall_seconds * 1e3);
    report("TFluxSoft   (4 std::thread kernels + emulator)", run.validate(),
           buf);
  }
  {
    apps::AppRun run = build();
    machine::Machine m(machine::bagle_sparc(4), run.program);
    const auto st = m.run();
    std::snprintf(buf, sizeof buf, "(%llu simulated cycles)",
                  static_cast<unsigned long long>(st.total_cycles));
    report("TFluxHard   (simulated 4-core Sparc, HW TSU)", run.validate(),
           buf);
  }
  {
    apps::AppRun run = build();
    cell::CellMachine m(cell::ps3_cell(4), run.program);
    const auto st = m.run();
    std::snprintf(buf, sizeof buf, "(%llu simulated cycles)",
                  static_cast<unsigned long long>(st.total_cycles));
    report("TFluxCell   (simulated PS3, 4 SPEs, TSU on PPE)", run.validate(),
           buf);
  }
  std::printf("one DDM program definition, four execution substrates.\n");
  return 0;
}
