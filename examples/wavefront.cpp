// Wavefront: a dependency-rich DDM scenario beyond parallel loops.
//
// A 2D dynamic-programming table (here: Needleman-Wunsch-style edit
// distance between two synthetic strings) is computed by tile: tile
// (i,j) depends on tiles (i-1,j) and (i,j-1). DDM shines here - the
// TSU releases each tile the instant its two producers finish, so the
// anti-diagonal wavefront emerges automatically from Ready Counts; no
// barrier or phase structure is needed.
//
// The example runs the same graph on 1 and 6 kernels of the simulated
// TFluxHard machine and prints the cycle counts - the wavefront's
// pipelined parallelism shows up as real speedup.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "machine/config.h"
#include "machine/machine.h"

namespace {

constexpr int kLen = 768;   // string length
constexpr int kTile = 128;  // tile edge
constexpr int kTiles = kLen / kTile;

struct Table {
  std::string a, b;
  std::vector<int> dp;  // (kLen+1)^2

  int& at(int i, int j) { return dp[static_cast<std::size_t>(i) * (kLen + 1) + j]; }
};

void compute_tile(Table& t, int ti, int tj) {
  const int i0 = ti * kTile + 1, i1 = i0 + kTile;
  const int j0 = tj * kTile + 1, j1 = j0 + kTile;
  for (int i = i0; i < i1; ++i) {
    for (int j = j0; j < j1; ++j) {
      const int sub = t.at(i - 1, j - 1) + (t.a[i - 1] == t.b[j - 1] ? 0 : 1);
      t.at(i, j) = std::min({sub, t.at(i - 1, j) + 1, t.at(i, j - 1) + 1});
    }
  }
}

tflux::core::Program build_program(std::shared_ptr<Table> table,
                                   std::uint16_t kernels) {
  using namespace tflux;
  core::ProgramBuilder builder("wavefront");
  const core::BlockId block = builder.add_block();

  // Init thread: strings + DP borders.
  const core::ThreadId init = builder.add_thread(
      block, "init", [table](const core::ExecContext&) {
        table->a.resize(kLen);
        table->b.resize(kLen);
        for (int i = 0; i < kLen; ++i) {
          table->a[i] = static_cast<char>('a' + (i * 7 + 3) % 4);
          table->b[i] = static_cast<char>('a' + (i * 5 + 1) % 4);
        }
        table->dp.assign(static_cast<std::size_t>(kLen + 1) * (kLen + 1), 0);
        for (int i = 0; i <= kLen; ++i) {
          table->at(i, 0) = i;
          table->at(0, i) = i;
        }
      });

  std::vector<std::vector<core::ThreadId>> tile(
      kTiles, std::vector<core::ThreadId>(kTiles));
  for (int ti = 0; ti < kTiles; ++ti) {
    for (int tj = 0; tj < kTiles; ++tj) {
      core::Footprint fp;
      fp.compute(static_cast<core::Cycles>(kTile) * kTile * 12);
      fp.read(0x1000000 + (static_cast<core::SimAddr>(ti) * kTiles + tj) *
                               kTile * kTile * 4,
              kTile * kTile * 4);
      tile[ti][tj] = builder.add_thread(
          block,
          "tile." + std::to_string(ti) + "." + std::to_string(tj),
          [table, ti, tj](const core::ExecContext&) {
            compute_tile(*table, ti, tj);
          },
          std::move(fp));
      if (ti == 0 && tj == 0) {
        builder.add_arc(init, tile[0][0]);
      }
      if (ti > 0) builder.add_arc(tile[ti - 1][tj], tile[ti][tj]);
      if (tj > 0) builder.add_arc(tile[ti][tj - 1], tile[ti][tj]);
    }
  }
  // Every border tile also needs init's data.
  for (int k = 1; k < kTiles; ++k) {
    builder.add_arc(init, tile[0][k]);
    builder.add_arc(init, tile[k][0]);
  }
  return builder.build(core::BuildOptions{.tsu_capacity = 0,
                                          .num_kernels = kernels});
}

}  // namespace

int main() {
  using namespace tflux;

  std::printf("wavefront edit-distance, %dx%d tiles of %dx%d cells\n",
              kTiles, kTiles, kTile, kTile);

  core::Cycles cycles1 = 0;
  int distance = -1;
  for (std::uint16_t kernels : {std::uint16_t{1}, std::uint16_t{6}}) {
    auto table = std::make_shared<Table>();
    core::Program program = build_program(table, kernels);
    machine::Machine m(machine::bagle_sparc(kernels), program);
    const machine::MachineStats st = m.run();
    if (kernels == 1) cycles1 = st.total_cycles;
    distance = table->at(kLen, kLen);
    std::printf("  %u kernels: %10llu cycles  (speedup %.2fx)\n", kernels,
                static_cast<unsigned long long>(st.total_cycles),
                static_cast<double>(cycles1) /
                    static_cast<double>(st.total_cycles));
  }
  std::printf("edit distance = %d\n", distance);
  // The diagonal dependence caps speedup below the kernel count but
  // the wavefront still pipelines nicely.
  return distance >= 0 ? 0 : 1;
}
