// Computing pi with the trapezoidal rule under the DDM model -
// the paper's TRAPEZ kernel expressed with DDM pragma directives.
// Thread 1 is a parallel loop (one DThread per 64 iterations after
// unrolling); thread 2 is the reduction and runs only when every
// loop DThread has completed (depends clause).
#include <cmath>
#include <cstdio>

#pragma ddm startprogram kernels 4 name pi_trapez

static const long NUM_INTERVALS = 1 << 20;
static double partials[1 << 20];
static double pi_result = 0.0;
#pragma ddm shared partials, pi_result

#pragma ddm for thread 1 unroll 64
for (long i = 1; i < NUM_INTERVALS; i++) {
  const double h = 1.0 / (double)NUM_INTERVALS;
  const double x = i * h;
  partials[i] = 4.0 / (1.0 + x * x) * h;
}
#pragma ddm endfor

#pragma ddm thread 2 depends(1)
{
  double sum = (4.0 / (1.0 + 0.0) + 4.0 / (1.0 + 1.0)) * 0.5
               / (double)NUM_INTERVALS;
  for (long c = 1; c < NUM_INTERVALS; ++c) sum += partials[c];
  pi_result = sum;
  std::printf("pi ~= %.9f\n", pi_result);
}
#pragma ddm endthread

#pragma ddm endprogram
