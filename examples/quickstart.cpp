// TFlux quickstart: build a small Data-Driven Multithreading program
// with the public API and execute it on the native TFluxSoft runtime.
//
// The program is a tiny fork-join: `split` produces two halves of an
// array, two `sum` DThreads consume one half each, and `join` adds the
// partial sums. The TSU schedules each DThread the moment its
// producers complete - no locks, no condition variables in user code.
//
//   $ ./quickstart
//   sum(0..9999) = 49995000
#include <cstdio>
#include <memory>
#include <numeric>
#include <vector>

#include "core/builder.h"
#include "runtime/runtime.h"

int main() {
  using namespace tflux;

  constexpr int kN = 10000;
  auto data = std::make_shared<std::vector<long>>();
  auto partial = std::make_shared<std::array<long, 2>>();
  auto total = std::make_shared<long>(0);

  core::ProgramBuilder builder("quickstart");
  const core::BlockId block = builder.add_block();

  // Producer: fills the array.
  const core::ThreadId split = builder.add_thread(
      block, "split", [data](const core::ExecContext&) {
        data->resize(kN);
        std::iota(data->begin(), data->end(), 0L);
      });

  // Two consumers, one array half each.
  std::vector<core::ThreadId> summers;
  for (int half = 0; half < 2; ++half) {
    summers.push_back(builder.add_thread(
        block, "sum" + std::to_string(half),
        [data, partial, half](const core::ExecContext& ctx) {
          const std::size_t begin = half * (kN / 2);
          const std::size_t end = begin + kN / 2;
          long sum = 0;
          for (std::size_t i = begin; i < end; ++i) sum += (*data)[i];
          (*partial)[half] = sum;
          std::printf("  sum[%d] ran on kernel %u\n", half, ctx.kernel);
        }));
    builder.add_arc(split, summers.back());
  }

  // Reduction: runs only after both halves are done.
  const core::ThreadId join = builder.add_thread(
      block, "join", [partial, total](const core::ExecContext&) {
        *total = (*partial)[0] + (*partial)[1];
      });
  builder.add_arc(summers[0], join);
  builder.add_arc(summers[1], join);

  // Validate the graph and run it on 2 worker kernels + the TSU
  // Emulator thread. strict = the full ddmlint pass (Ready Counts,
  // deadlock, footprint races) runs at build() and throws on errors.
  core::Program program = builder.build(core::BuildOptions{
      .tsu_capacity = 0, .num_kernels = 2, .strict = true});
  runtime::Runtime rt(program, runtime::RuntimeOptions{.num_kernels = 2});
  const runtime::RuntimeStats stats = rt.run();

  std::printf("sum(0..%d) = %ld\n", kN - 1, *total);
  std::printf("(%llu DThreads executed, %llu Ready Count updates)\n",
              static_cast<unsigned long long>(
                  stats.total_app_threads_executed()),
              static_cast<unsigned long long>(
                  stats.emulator.updates_processed));
  return *total == static_cast<long>(kN) * (kN - 1) / 2 ? 0 : 1;
}
