// Software pipeline: a signal-processing chain (generate -> FIR filter
// -> downsample -> RMS) over a stream of frames, expressed as a DDM
// program. Each stage of each frame is one DThread; arcs encode both
// the stage order within a frame and the stateful stage's
// frame-to-frame dependency (the FIR filter carries overlap state, so
// filter(frame i) also depends on filter(frame i-1)).
//
// The TSU overlaps the stages of different frames automatically - the
// classic pipelined-parallelism picture - while the native runtime
// executes everything with real std::threads and the result is checked
// against a sequential run of the same chain.
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/analysis.h"
#include "core/builder.h"
#include "runtime/runtime.h"

namespace {

constexpr int kFrames = 64;
constexpr int kFrameLen = 2048;
constexpr int kTaps = 16;
constexpr int kDecimate = 4;

struct Stream {
  std::vector<std::vector<double>> raw;        // per frame
  std::vector<std::vector<double>> filtered;   // per frame
  std::vector<std::vector<double>> decimated;  // per frame
  std::vector<double> rms;                     // per frame
  std::vector<double> fir_state;               // kTaps-1 carry samples
};

void generate(Stream& s, int frame) {
  auto& out = s.raw[frame];
  out.resize(kFrameLen);
  for (int i = 0; i < kFrameLen; ++i) {
    const double t = frame * kFrameLen + i;
    out[i] = std::sin(0.01 * t) + 0.25 * std::sin(0.31 * t + 1.0);
  }
}

void fir(Stream& s, int frame) {
  auto& out = s.filtered[frame];
  out.resize(kFrameLen);
  auto sample = [&](int i) -> double {
    // i indexes into this frame; negative reaches into carried state.
    if (i >= 0) return s.raw[frame][i];
    return s.fir_state[kTaps - 1 + i];
  };
  for (int i = 0; i < kFrameLen; ++i) {
    double acc = 0;
    for (int t = 0; t < kTaps; ++t) acc += sample(i - t) / kTaps;
    out[i] = acc;
  }
  // Carry the tail into the next frame (the stateful dependency).
  for (int t = 0; t < kTaps - 1; ++t) {
    s.fir_state[t] = s.raw[frame][kFrameLen - (kTaps - 1) + t];
  }
}

void decimate(Stream& s, int frame) {
  auto& out = s.decimated[frame];
  out.resize(kFrameLen / kDecimate);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = s.filtered[frame][i * kDecimate];
  }
}

void rms(Stream& s, int frame) {
  double acc = 0;
  for (double v : s.decimated[frame]) acc += v * v;
  s.rms[frame] = std::sqrt(acc / static_cast<double>(
                                     s.decimated[frame].size()));
}

std::vector<double> run_sequential() {
  Stream s;
  s.raw.resize(kFrames);
  s.filtered.resize(kFrames);
  s.decimated.resize(kFrames);
  s.rms.resize(kFrames);
  s.fir_state.assign(kTaps - 1, 0.0);
  for (int f = 0; f < kFrames; ++f) {
    generate(s, f);
    fir(s, f);
    decimate(s, f);
    rms(s, f);
  }
  return s.rms;
}

}  // namespace

int main() {
  using namespace tflux;

  auto stream = std::make_shared<Stream>();
  stream->raw.resize(kFrames);
  stream->filtered.resize(kFrames);
  stream->decimated.resize(kFrames);
  stream->rms.resize(kFrames);
  stream->fir_state.assign(kTaps - 1, 0.0);

  core::ProgramBuilder builder("pipeline");
  const core::BlockId block = builder.add_block();
  core::ThreadId prev_fir = core::kInvalidThread;
  for (int f = 0; f < kFrames; ++f) {
    // Footprints (compute-cycle weights) make the graph analysis and
    // machine simulation meaningful: FIR dominates (kTaps MACs/sample).
    auto weighted = [](core::Cycles c) {
      core::Footprint fp;
      fp.compute(c);
      return fp;
    };
    const core::ThreadId gen = builder.add_thread(
        block, "gen" + std::to_string(f),
        [stream, f](const core::ExecContext&) { generate(*stream, f); },
        weighted(kFrameLen * 20));
    const core::ThreadId fil = builder.add_thread(
        block, "fir" + std::to_string(f),
        [stream, f](const core::ExecContext&) { fir(*stream, f); },
        weighted(static_cast<core::Cycles>(kFrameLen) * kTaps * 4));
    const core::ThreadId dec = builder.add_thread(
        block, "dec" + std::to_string(f),
        [stream, f](const core::ExecContext&) { decimate(*stream, f); },
        weighted(kFrameLen / kDecimate * 4));
    const core::ThreadId r = builder.add_thread(
        block, "rms" + std::to_string(f),
        [stream, f](const core::ExecContext&) { rms(*stream, f); },
        weighted(kFrameLen / kDecimate * 6));
    builder.add_arc(gen, fil);
    builder.add_arc(fil, dec);
    builder.add_arc(dec, r);
    if (prev_fir != core::kInvalidThread) {
      builder.add_arc(prev_fir, fil);  // FIR state carries frame order
    }
    prev_fir = fil;
  }

  core::Program program =
      builder.build(core::BuildOptions{.num_kernels = 4});
  const core::GraphAnalysis a = core::analyze(program);
  std::printf("pipeline: %d frames x 4 stages = %u DThreads, critical "
              "path %u, avg parallelism %.2f\n",
              kFrames, program.num_app_threads(), a.critical_path_threads,
              a.average_parallelism);

  runtime::Runtime rt(program, runtime::RuntimeOptions{.num_kernels = 4});
  rt.run();

  const std::vector<double> reference = run_sequential();
  for (int f = 0; f < kFrames; ++f) {
    if (std::abs(reference[f] - stream->rms[f]) > 1e-12) {
      std::printf("MISMATCH at frame %d\n", f);
      return 1;
    }
  }
  std::printf("all %d frame RMS values match the sequential chain "
              "(last = %.6f)\n",
              kFrames, stream->rms[kFrames - 1]);
  return 0;
}
