// Overhead of ddmguard online protocol checking (RuntimeOptions::
// guard) on the native TFluxSoft runtime. The guard's claim is that it
// can stay on outside of CI: off is one predictable null branch per
// hook, sampled:N bounds the deep per-member accounting to every Nth
// block, and full pays the whole invariant catalog on every block.
// This bench runs each workload under off / sampled:8 / full and
// reports the relative wall-time cost against off. Targets: sampled:8
// < 10% on real benchmarks, full bounded (worst case documented in
// docs/CHECKING.md, not gated).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/suite.h"
#include "core/builder.h"
#include "core/guard.h"
#include "json_out.h"
#include "runtime/runtime.h"

namespace {

using namespace tflux;

/// ~0.5us of arithmetic per DThread body: a worst case for the guard,
/// whose per-event cost is fixed while the bodies are tiny.
void spin_body(const core::ExecContext&) {
  volatile std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
}

core::Program make_spin_program(std::uint16_t kernels, int blocks,
                                int width) {
  core::ProgramBuilder b("spin_" + std::to_string(blocks) + "x" +
                         std::to_string(width));
  for (int blk = 0; blk < blocks; ++blk) {
    const core::BlockId id = b.add_block();
    for (int i = 0; i < width; ++i) {
      b.add_thread(id, "t", spin_body);
    }
  }
  return b.build(core::BuildOptions{.num_kernels = kernels});
}

struct Mode {
  const char* name;
  core::GuardOptions guard;
};

struct ModeResult {
  double wall_ms_min = 0.0;
  double wall_ms_median = 0.0;
  std::uint64_t checks = 0;        ///< guard checks of the first run
  std::uint64_t sampled_blocks = 0;
};

ModeResult measure(const core::Program& program, std::uint16_t kernels,
                   const core::GuardOptions& guard, int repeats) {
  std::vector<double> walls;
  ModeResult r;
  for (int i = 0; i < repeats; ++i) {
    runtime::RuntimeOptions options;
    options.num_kernels = kernels;
    options.guard = guard;
    runtime::Runtime rt(program, options);
    const runtime::RuntimeStats st = rt.run();
    if (st.guard.violations != 0) {
      std::fprintf(stderr, "guard tripped on a clean run - aborting\n");
      std::exit(2);
    }
    walls.push_back(st.wall_seconds * 1e3);
    if (i == 0) {
      r.checks = st.guard.checks;
      r.sampled_blocks = st.guard.sampled_blocks;
    }
  }
  std::sort(walls.begin(), walls.end());
  r.wall_ms_min = walls.front();
  r.wall_ms_median = walls[walls.size() / 2];
  return r;
}

struct Workload {
  std::string name;
  core::Program program;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("guard_overhead");

  // REPEATS=N environment override keeps the CI smoke cheap.
  int repeats = 15;
  if (const char* env = std::getenv("REPEATS")) {
    repeats = std::max(1, std::atoi(env));
  }

  const Mode modes[] = {
      {"off", {core::GuardMode::kOff, 8}},
      {"sampled:8", {core::GuardMode::kSampled, 8}},
      {"full", {core::GuardMode::kFull, 8}},
  };

  std::printf("=== ddmguard online checking overhead (TFluxSoft, best "
              "of %d) ===\n\n", repeats);
  std::printf("%-10s %-8s %-10s | %10s %9s %10s\n", "workload",
              "kernels", "guard", "wall_ms", "overhead", "checks");
  std::printf("------------------------------+--------------------------"
              "------\n");

  bool sampled_under_10pct = true;
  for (std::uint16_t kernels : {2, 4}) {
    std::vector<Workload> workloads;
    // Worst case: tiny spin DThreads across many block transitions.
    workloads.push_back(
        {"spin", make_spin_program(kernels, 16, 8 * kernels)});
    // Realistic case: a shipped benchmark at bench-sized parameters
    // (the fig6 trapez configuration scaled to several blocks).
    apps::DdmParams params;
    params.num_kernels = kernels;
    params.unroll = 8;
    params.tsu_capacity = 64;
    workloads.push_back(
        {"trapez", apps::build_app(apps::AppKind::kTrapez,
                                   apps::SizeClass::kSmall,
                                   apps::Platform::kNative, params)
                       .program});

    for (const Workload& w : workloads) {
      double off_ms = 0.0;
      for (const Mode& mode : modes) {
        const ModeResult r =
            measure(w.program, kernels, mode.guard, repeats);
        if (mode.guard.mode == core::GuardMode::kOff) {
          off_ms = r.wall_ms_min;
        }
        const double overhead_pct =
            off_ms > 0.0 ? (r.wall_ms_min / off_ms - 1.0) * 100.0 : 0.0;
        if (w.name == "trapez" &&
            mode.guard.mode == core::GuardMode::kSampled &&
            overhead_pct >= 10.0) {
          sampled_under_10pct = false;
        }
        std::printf("%-10s %-8u %-10s | %10.4f %8.2f%% %10llu\n",
                    w.name.c_str(), kernels, mode.name, r.wall_ms_min,
                    overhead_pct,
                    static_cast<unsigned long long>(r.checks));

        json.begin_row();
        json.field("workload", w.name);
        json.field("kernels", static_cast<std::uint32_t>(kernels));
        json.field("guard", mode.name);
        json.field("wall_ms_min", r.wall_ms_min);
        json.field("wall_ms_median", r.wall_ms_median);
        json.field("checks", r.checks);
        json.field("sampled_blocks", r.sampled_blocks);
        json.field("overhead_pct", overhead_pct);
      }
    }
  }
  std::printf("\nexpected: off is the do-nothing branch (baseline); "
              "sampled:8 stays under 10%%\non real benchmarks; full "
              "bounds the worst case. %s\n",
              sampled_under_10pct ? "(sampled target holds)"
                                  : "(sampled target did NOT hold)");
  return json.write_file(json_path) ? 0 : 2;
}
