// Ablation of the TSU's ready-DThread selection policy. The paper
// (section 3.1): "If more than one ready DThreads exist the TSU
// returns the one which, based on its internal policy, is most likely
// to maximize the spatial locality."
//
// The locality policy keeps a DThread on its home kernel, so a phase-2
// DThread reads what the *same core's* phase-1 DThread wrote (warm
// private L2); the FIFO policy scrambles the assignment and turns
// those hits into cache-to-cache transfers over the bus. SUSAN - three
// row-parallel phases writing/reading the same row ranges - shows the
// effect directly.
#include <cstdio>

#include "apps/suite.h"
#include "json_out.h"
#include "machine/config.h"
#include "machine/machine.h"

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("ablation_policy");

  std::printf("=== Ablation: TSU ready-thread policy (locality vs FIFO) "
              "===\n");
  std::printf("(SUSAN + MMULT, 8 kernels, TFluxHard)\n\n");
  std::printf("%-8s %-10s | %12s %10s %10s %10s\n", "app", "policy",
              "cycles", "l2_miss", "c2c", "speedup-vs-fifo");
  std::printf("--------------------+--------------------------------------"
              "--------\n");

  bool locality_wins_everywhere = true;
  for (apps::AppKind app : {apps::AppKind::kSusan, apps::AppKind::kMmult}) {
    core::Cycles fifo_cycles = 0;
    for (core::PolicyKind policy :
         {core::PolicyKind::kFifo, core::PolicyKind::kLocality}) {
      apps::DdmParams params;
      params.num_kernels = 8;
      params.unroll = 4;
      params.tsu_capacity = 512;
      apps::AppRun run = apps::build_app(app, apps::SizeClass::kMedium,
                                         apps::Platform::kSimulated, params);
      machine::MachineConfig cfg = machine::bagle_sparc(8);
      cfg.policy = policy;
      machine::Machine m(cfg, run.program, /*invoke_bodies=*/false);
      const machine::MachineStats st = m.run();
      if (policy == core::PolicyKind::kFifo) fifo_cycles = st.total_cycles;
      const double vs_fifo = static_cast<double>(fifo_cycles) /
                             static_cast<double>(st.total_cycles);
      std::printf("%-8s %-10s | %12llu %10llu %10llu %9.3fx\n",
                  apps::to_string(app), core::to_string(policy),
                  static_cast<unsigned long long>(st.total_cycles),
                  static_cast<unsigned long long>(st.mem.l2_misses),
                  static_cast<unsigned long long>(st.mem.c2c_transfers),
                  vs_fifo);
      json.begin_row();
      json.field("app", apps::to_string(app));
      json.field("policy", core::to_string(policy));
      json.field("cycles", static_cast<std::uint64_t>(st.total_cycles));
      json.field("l2_misses", static_cast<std::uint64_t>(st.mem.l2_misses));
      json.field("c2c_transfers",
                 static_cast<std::uint64_t>(st.mem.c2c_transfers));
      json.field("speedup_vs_fifo", vs_fifo);
      if (policy == core::PolicyKind::kLocality && vs_fifo < 1.0) {
        locality_wins_everywhere = false;
      }
    }
    std::printf("--------------------+------------------------------------"
                "----------\n");
  }
  std::printf("\nexpected: the locality policy keeps consumer DThreads on "
              "the core whose caches\nhold their producers' data - fewer "
              "L2 misses and cache-to-cache transfers, more\nspeedup. %s\n",
              locality_wins_everywhere
                  ? "(holds on both workloads)"
                  : "(did NOT hold on every workload - see numbers)");
  return json.write_file(json_path) ? 0 : 2;
}
