#!/usr/bin/env bash
# Produce the repo's machine-readable benchmark artifacts.
#
# Default (fast) mode writes the tracked files at the repo root:
#   BENCH_micro_runtime.json - runtime-primitive microbenches, both
#                              hot paths (lockfree vs mutex)
#   BENCH_fig6.json          - the Figure 6 TFluxSoft speedup sweep
#   BENCH_blocks.json        - block-transition pipeline ablation
#                              (pipelined vs synchronous SM reload)
#   BENCH_trace_overhead.json - ddmcheck execution-tracing cost
#                              (traced vs untraced wall time)
#   BENCH_coalesce.json      - range-update coalescing ablation
#   BENCH_guard_overhead.json - ddmguard online-checking cost
#                              (off vs sampled:8 vs full)
#                              (coalesced vs unit update publishing)
#   BENCH_shards.json        - sharded TSU vs flat (hierarchical
#                              stealing) + native steal-stat
#                              reconciliation against ddmcheck
#   BENCH_dataplane.json     - managed data plane (bulk forwarding +
#                              affinity dispatch) vs implicit shared
#                              memory + native forwarding-stat
#                              reconciliation against ddmcheck
#   BENCH_executor.json      - resident multi-program executor: open-
#                              loop mixed-app throughput + tail latency
#                              vs per-request runtime spawn (gated
#                              >= 3x at 16 kernels)
#
# FULL=1 additionally runs every other bench binary into
# BENCH_<name>.json. Usage:
#   bench/run_benchmarks.sh [build_dir] [out_dir]
#
# Any bench binary exiting nonzero aborts the script (its partial JSON
# is deleted) instead of silently leaving a stale or truncated
# artifact behind. At the end, every committed BENCH_*.json in the
# output directory must have been (re)produced by this run - a tracked
# artifact no bench claims any more fails the script, so renames and
# removals cannot silently leave stale data behind.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
BENCH_DIR="$BUILD_DIR/bench"

MANIFEST=""

# run_bench <binary> <json_path> [extra args...]: run one bench with
# --json, deleting the artifact and failing loudly on nonzero exit.
run_bench() {
  local bin="$1" json="$2" rc
  shift 2
  echo "== $(basename "$bin") -> $json"
  "$bin" "$@" --json "$json" || {
    rc=$?
    rm -f "$json"
    echo "error: $(basename "$bin") exited with status $rc" >&2
    exit "$rc"
  }
  MANIFEST="$MANIFEST $(basename "$json")"
}

if [ ! -x "$BENCH_DIR/micro_runtime" ]; then
  echo "error: $BENCH_DIR/micro_runtime not built" \
       "(cmake --build $BUILD_DIR)" >&2
  exit 2
fi

# MIN_TIME trades precision for wall time (google-benchmark seconds
# per measurement); CI smoke uses a small value.
MIN_TIME="${MIN_TIME:-0.1}"

run_bench "$BENCH_DIR/micro_runtime" "$OUT_DIR/BENCH_micro_runtime.json" \
  --benchmark_min_time="$MIN_TIME"
run_bench "$BENCH_DIR/fig6_tfluxsoft" "$OUT_DIR/BENCH_fig6.json"
run_bench "$BENCH_DIR/ablation_blocks" "$OUT_DIR/BENCH_blocks.json"
run_bench "$BENCH_DIR/trace_overhead" "$OUT_DIR/BENCH_trace_overhead.json"
run_bench "$BENCH_DIR/update_coalesce" "$OUT_DIR/BENCH_coalesce.json"
run_bench "$BENCH_DIR/guard_overhead" "$OUT_DIR/BENCH_guard_overhead.json"
run_bench "$BENCH_DIR/ablation_shards" "$OUT_DIR/BENCH_shards.json"
run_bench "$BENCH_DIR/ablation_dataplane" "$OUT_DIR/BENCH_dataplane.json"
# SERVE_REQUESTS/SERVE_REPS/SERVE_GATE shrink the stream for CI smoke
# (the throughput gate is meaningless at smoke sizes - disable it with
# SERVE_GATE=0 there; the committed artifact comes from the defaults).
run_bench "$BENCH_DIR/request_driver" "$OUT_DIR/BENCH_executor.json" \
  --requests="${SERVE_REQUESTS:-120}" --reps="${SERVE_REPS:-3}" \
  --gate="${SERVE_GATE:-3.0}"

if [ "${FULL:-0}" = "1" ]; then
  run_bench "$BENCH_DIR/ablation_tub_tkt" \
    "$OUT_DIR/BENCH_ablation_tub_tkt.json" \
    --benchmark_min_time="$MIN_TIME"
  for b in fig5_tfluxhard fig5x86_tfluxhard fig7_tfluxcell \
           table1_workloads ablation_policy ablation_tsu_groups \
           ablation_tsu_latency ablation_unroll; do
    run_bench "$BENCH_DIR/$b" "$OUT_DIR/BENCH_$b.json"
  done
fi

# Manifest completeness: every committed BENCH_*.json must be claimed
# by one of the benches that just ran (FULL=1 artifacts are exempt
# unless they exist in OUT_DIR and this was not a FULL run - they are
# stale either way if nothing produced them).
missing=0
for f in "$OUT_DIR"/BENCH_*.json; do
  [ -e "$f" ] || continue
  case " $MANIFEST " in
    *" $(basename "$f") "*) ;;
    *)
      echo "error: $(basename "$f") is tracked but no bench in this run" \
           "produced it (stale artifact - rerun with FULL=1 or delete it)" >&2
      missing=1
      ;;
  esac
done
[ "$missing" = "0" ] || exit 1

echo "done."
