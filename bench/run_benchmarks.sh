#!/usr/bin/env bash
# Produce the repo's machine-readable benchmark artifacts.
#
# Default (fast) mode writes the tracked files at the repo root:
#   BENCH_micro_runtime.json - runtime-primitive microbenches, both
#                              hot paths (lockfree vs mutex)
#   BENCH_fig6.json          - the Figure 6 TFluxSoft speedup sweep
#   BENCH_blocks.json        - block-transition pipeline ablation
#                              (pipelined vs synchronous SM reload)
#   BENCH_trace_overhead.json - ddmcheck execution-tracing cost
#                              (traced vs untraced wall time)
#
# FULL=1 additionally runs every other bench binary into
# BENCH_<name>.json. Usage:
#   bench/run_benchmarks.sh [build_dir] [out_dir]
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-.}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -x "$BENCH_DIR/micro_runtime" ]; then
  echo "error: $BENCH_DIR/micro_runtime not built" \
       "(cmake --build $BUILD_DIR)" >&2
  exit 2
fi

# MIN_TIME trades precision for wall time (google-benchmark seconds
# per measurement); CI smoke uses a small value.
MIN_TIME="${MIN_TIME:-0.1}"

echo "== micro_runtime -> $OUT_DIR/BENCH_micro_runtime.json"
"$BENCH_DIR/micro_runtime" \
  --benchmark_min_time="$MIN_TIME" \
  --json "$OUT_DIR/BENCH_micro_runtime.json"

echo "== fig6_tfluxsoft -> $OUT_DIR/BENCH_fig6.json"
"$BENCH_DIR/fig6_tfluxsoft" --json "$OUT_DIR/BENCH_fig6.json"

echo "== ablation_blocks -> $OUT_DIR/BENCH_blocks.json"
"$BENCH_DIR/ablation_blocks" --json "$OUT_DIR/BENCH_blocks.json"

echo "== trace_overhead -> $OUT_DIR/BENCH_trace_overhead.json"
"$BENCH_DIR/trace_overhead" --json "$OUT_DIR/BENCH_trace_overhead.json"

if [ "${FULL:-0}" = "1" ]; then
  echo "== ablation_tub_tkt -> $OUT_DIR/BENCH_ablation_tub_tkt.json"
  "$BENCH_DIR/ablation_tub_tkt" \
    --benchmark_min_time="$MIN_TIME" \
    --json "$OUT_DIR/BENCH_ablation_tub_tkt.json"
  for b in fig5_tfluxhard fig5x86_tfluxhard fig7_tfluxcell \
           table1_workloads ablation_policy ablation_tsu_groups \
           ablation_tsu_latency ablation_unroll; do
    echo "== $b -> $OUT_DIR/BENCH_$b.json"
    "$BENCH_DIR/$b" --json "$OUT_DIR/BENCH_$b.json"
  done
fi

echo "done."
