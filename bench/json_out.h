// Machine-readable bench output: every bench/ binary accepts
// `--json <path>` (or `--json=<path>`) and mirrors its key numbers
// into a small JSON document, so the perf trajectory can be tracked
// as BENCH_*.json files at the repo root (bench/run_benchmarks.sh).
//
// Header-only and dependency-free so the google-benchmark binaries
// (micro_runtime, ablation_tub_tkt) can use the flag parser without
// linking the figure-bench harness.
#pragma once

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace tflux::bench {

/// Strip a trailing-value `--json <path>` / `--json=<path>` flag from
/// argv (so downstream arg parsing never sees it). Returns the path,
/// or "" when the flag is absent.
inline std::string parse_json_flag(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--json" && r + 1 < argc) {
      path = argv[++r];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  return path;
}

/// Tiny append-only JSON document builder: one named bench, a flat
/// list of result rows, each a set of scalar fields.
class JsonWriter {
 public:
  explicit JsonWriter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void begin_row() { rows_.emplace_back(); }

  void field(const std::string& key, const std::string& value) {
    row().emplace_back(key, "\"" + escape(value) + "\"");
  }
  void field(const std::string& key, const char* value) {
    field(key, std::string(value));
  }
  void field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    row().emplace_back(key, buf);
  }
  void field(const std::string& key, std::uint64_t value) {
    row().emplace_back(key, std::to_string(value));
  }
  void field(const std::string& key, std::uint32_t value) {
    row().emplace_back(key, std::to_string(value));
  }
  void field(const std::string& key, int value) {
    row().emplace_back(key, std::to_string(value));
  }
  void field(const std::string& key, bool value) {
    row().emplace_back(key, value ? "true" : "false");
  }

  /// Serialize. Returns false (after a perror-style message) when the
  /// file cannot be written; a no-op returning true when `path` is "".
  bool write_file(const std::string& path) const {
    if (path.empty()) return true;
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot write JSON to '%s'\n",
                   path.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << escape(bench_name_)
        << "\",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << "    {";
      for (std::size_t f = 0; f < rows_[i].size(); ++f) {
        out << "\"" << escape(rows_[i][f].first)
            << "\": " << rows_[i][f].second;
        if (f + 1 < rows_[i].size()) out << ", ";
      }
      out << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return static_cast<bool>(out);
  }

 private:
  using Row = std::vector<std::pair<std::string, std::string>>;

  Row& row() {
    if (rows_.empty()) rows_.emplace_back();
    return rows_.back();
  }

  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_name_;
  std::vector<Row> rows_;
};

}  // namespace tflux::bench
