// Ablation of coalesced range updates (native TFluxSoft runtime).
// A loop DThread that feeds every chunk of a consumer loop used to
// publish one TUB entry and one emulator Ready-Count decrement per
// consumer instance; with range records (RuntimeOptions::
// coalesce_updates) the whole consecutive run travels as a single
// [consumer_lo, consumer_hi] entry and the TSU applies it as one
// contiguous sweep over the per-kernel SM slice.
//
// Two parts:
//   1. A loop fan-out microbench built to maximize update traffic:
//      B blocks, each with W zero-RC producers all feeding the same N
//      consecutive consumers (empty bodies). Unit mode moves
//      B*W*N update entries; coalesced mode moves B*W range records.
//   2. The Figure-6 applications (small size, native runtime), each
//      run coalesced and unit, to show real programs do not regress.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "apps/suite.h"
#include "core/builder.h"
#include "json_out.h"
#include "runtime/runtime.h"

namespace {

using namespace tflux;

void empty_body(const core::ExecContext&) {}

/// B blocks x (W producers -> N shared consecutive consumers): every
/// producer declares one range arc covering all N consumers, so each
/// consumer starts with RC = W and the update path carries the whole
/// load.
core::Program make_fanout_program(std::uint16_t kernels, int blocks,
                                  int producers, int consumers) {
  core::ProgramBuilder b("fanout_" + std::to_string(blocks) + "x" +
                         std::to_string(producers) + "x" +
                         std::to_string(consumers));
  for (int blk = 0; blk < blocks; ++blk) {
    const core::BlockId id = b.add_block();
    std::vector<core::ThreadId> prods;
    prods.reserve(producers);
    for (int i = 0; i < producers; ++i) {
      prods.push_back(b.add_thread(id, "p", empty_body));
    }
    core::ThreadId c_lo = core::kInvalidThread;
    core::ThreadId c_hi = core::kInvalidThread;
    for (int i = 0; i < consumers; ++i) {
      const core::ThreadId c = b.add_thread(id, "c", empty_body);
      if (i == 0) c_lo = c;
      c_hi = c;
    }
    for (core::ThreadId p : prods) {
      b.add_arc_range(p, c_lo, c_hi);
    }
  }
  return b.build(core::BuildOptions{.num_kernels = kernels});
}

struct ModeResult {
  double wall_ms_min = 0.0;
  double wall_ms_median = 0.0;
  runtime::EmulatorStats emulator;
  runtime::TubStats tub;
};

/// Run both modes with interleaved repeats (unit, coalesced, unit,
/// coalesced, ...) so clock drift, thermal state and allocator growth
/// hit both sides equally instead of biasing whichever runs second.
/// Returns {unit, coalesced}.
std::pair<ModeResult, ModeResult> run_pair(const core::Program& program,
                                           std::uint16_t kernels,
                                           int repeats) {
  std::vector<double> walls[2];
  ModeResult results[2];
  for (int i = 0; i < repeats; ++i) {
    for (int mode = 0; mode < 2; ++mode) {
      runtime::Runtime rt(program,
                          runtime::RuntimeOptions{
                              .num_kernels = kernels,
                              .coalesce_updates = mode == 1,
                          });
      const runtime::RuntimeStats st = rt.run();
      walls[mode].push_back(st.wall_seconds * 1e3);
      if (i == 0) {
        results[mode].emulator = st.emulator;
        results[mode].tub = st.tub;
      }
    }
  }
  for (int mode = 0; mode < 2; ++mode) {
    std::sort(walls[mode].begin(), walls[mode].end());
    results[mode].wall_ms_min = walls[mode].front();
    results[mode].wall_ms_median = walls[mode][walls[mode].size() / 2];
  }
  return {results[0], results[1]};
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("update_coalesce");

  // REPEATS=N environment override keeps the CI smoke cheap.
  int repeats = 15;
  if (const char* env = std::getenv("REPEATS")) {
    repeats = std::max(1, std::atoi(env));
  }
  const std::uint16_t kernels = 4;

  std::printf("=== Ablation: coalesced range updates vs per-consumer "
              "unit updates (TFluxSoft) ===\n\n");
  std::printf("-- loop fan-out microbench (best of %d, %u kernels) --\n",
              repeats, kernels);
  std::printf("%-7s %-6s %-6s | %10s %10s %9s %12s %12s\n", "blocks",
              "prods", "cons", "unit_ms", "coal_ms", "speedup",
              "unit_tub", "coal_tub");
  std::printf("----------------------+---------------------------------"
              "---------------\n");

  double fanout_speedup = 0.0;
  for (const auto& [blocks, producers, consumers] :
       {std::tuple{4, 8, 240}, std::tuple{12, 8, 480}}) {
    const core::Program program =
        make_fanout_program(kernels, blocks, producers, consumers);
    const auto [unit, coal] = run_pair(program, kernels, repeats);
    const double speedup = unit.wall_ms_min / coal.wall_ms_min;
    fanout_speedup = speedup;  // last (largest) row is the headline
    std::printf("%-7d %-6d %-6d | %10.4f %10.4f %8.3fx %12llu %12llu\n",
                blocks, producers, consumers, unit.wall_ms_min,
                coal.wall_ms_min, speedup,
                static_cast<unsigned long long>(unit.tub.entries_published),
                static_cast<unsigned long long>(coal.tub.entries_published));
    for (const bool coalesced : {false, true}) {
      const ModeResult& r = coalesced ? coal : unit;
      json.begin_row();
      json.field("workload", "fanout");
      json.field("blocks", blocks);
      json.field("producers", producers);
      json.field("consumers", consumers);
      json.field("kernels", static_cast<std::uint32_t>(kernels));
      json.field("coalesce", coalesced);
      json.field("wall_ms_min", r.wall_ms_min);
      json.field("wall_ms_median", r.wall_ms_median);
      json.field("tub_entries", r.tub.entries_published);
      json.field("updates_processed", r.emulator.updates_processed);
      json.field("range_updates", r.emulator.range_updates_processed);
      json.field("range_members", r.emulator.range_members);
      if (coalesced) json.field("speedup_vs_unit", speedup);
    }
  }

  std::printf("\n-- Figure 6 applications (small, native runtime, best "
              "of %d) --\n", repeats);
  std::printf("%-8s | %10s %10s %9s %14s\n", "app", "unit_ms", "coal_ms",
              "speedup", "range_records");
  std::printf("---------+--------------------------------------------"
              "----\n");

  bool apps_ok = true;
  apps::DdmParams params;
  params.num_kernels = kernels;
  params.unroll = 32;
  params.tsu_capacity = 512;
  for (apps::AppKind app : apps::table1_apps()) {
    const apps::AppRun run = apps::build_app(
        app, apps::SizeClass::kSmall, apps::Platform::kNative, params);
    const auto [unit, coal] = run_pair(run.program, kernels, repeats);
    const double speedup = unit.wall_ms_min / coal.wall_ms_min;
    // Regression gate: coalescing must not cost real applications more
    // than measurement noise (2%).
    if (coal.wall_ms_min > unit.wall_ms_min * 1.02) apps_ok = false;
    std::printf("%-8s | %10.4f %10.4f %8.3fx %14llu\n", run.name.c_str(),
                unit.wall_ms_min, coal.wall_ms_min, speedup,
                static_cast<unsigned long long>(
                    coal.emulator.range_updates_processed));
    for (const bool coalesced : {false, true}) {
      const ModeResult& r = coalesced ? coal : unit;
      json.begin_row();
      json.field("workload", "fig6_app");
      json.field("app", run.name);
      json.field("kernels", static_cast<std::uint32_t>(kernels));
      json.field("coalesce", coalesced);
      json.field("wall_ms_min", r.wall_ms_min);
      json.field("wall_ms_median", r.wall_ms_median);
      json.field("updates_processed", r.emulator.updates_processed);
      json.field("range_updates", r.emulator.range_updates_processed);
      json.field("range_members", r.emulator.range_members);
      if (coalesced) json.field("speedup_vs_unit", speedup);
    }
  }

  std::printf("\nexpected: range records collapse the fan-out "
              "microbench's update traffic by\n~%dx, so coalesced runs "
              ">= 1.5x faster there and real applications stay\nwithin "
              "noise. fan-out speedup %.2fx, apps %s\n",
              480, fanout_speedup,
              apps_ok ? "within 2%" : "REGRESSED (see numbers)");
  return json.write_file(json_path) ? 0 : 2;
}
