// Section 4.1 extension study: "For systems with very large number of
// CPUs it may be beneficial to have multiple TSU Groups. A version of
// the TSU Group supporting such functionality is currently under
// development." - this repository implements it; this bench evaluates
// when it pays off.
//
// Workload: fine-grained TRAPEZ (small unroll => many tiny DThreads),
// where the TSU port is the scalability limit. Sweeps kernel count x
// TSU group count with a deliberately slow TSU (op_cycles = 32) so the
// single-group port saturates, and reports speedup plus TSU-port
// utilization. More groups relieve the port at the price of
// cross-group Ready Count updates.
#include <cstdio>
#include <vector>

#include "apps/suite.h"
#include "json_out.h"
#include "machine/config.h"
#include "machine/machine.h"

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("ablation_tsu_groups");

  const std::vector<std::uint16_t> kernel_counts = {8, 16, 27};
  const std::vector<std::uint16_t> group_counts = {1, 2, 4};

  std::printf("=== Extension (section 4.1): multiple TSU Groups ===\n");
  std::printf("(TRAPEZ Medium, unroll 2 => fine DThreads; hardware TSU "
              "slowed to 32 cy/op so the\n single group port saturates at "
              "high kernel counts)\n\n");
  std::printf("%-8s %-7s | %10s %14s %16s\n", "kernels", "groups",
              "speedup", "port-busy%", "intergroup-ops");
  std::printf("-----------------+--------------------------------------"
              "----\n");

  for (std::uint16_t kernels : kernel_counts) {
    for (std::uint16_t groups : group_counts) {
      apps::DdmParams params;
      params.num_kernels = kernels;
      params.unroll = 2;
      params.tsu_capacity = 1024;
      apps::AppRun run =
          apps::build_app(apps::AppKind::kTrapez, apps::SizeClass::kMedium,
                          apps::Platform::kSimulated, params);

      machine::MachineConfig cfg = machine::bagle_sparc(kernels);
      cfg.tsu.op_cycles = 32;
      cfg.tsu.num_groups = groups;
      machine::Machine m(cfg, run.program, /*invoke_bodies=*/false);
      const machine::MachineStats st = m.run();
      const core::Cycles base =
          machine::simulate_sequential(cfg, run.sequential_plan);

      // Busiest group's port utilization over the run.
      core::Cycles max_busy = 0;
      for (core::Cycles b : st.tsu_group_busy) {
        max_busy = std::max(max_busy, b);
      }
      const double speedup = static_cast<double>(base) /
                             static_cast<double>(st.total_cycles);
      const double port_busy = 100.0 * static_cast<double>(max_busy) /
                               static_cast<double>(st.total_cycles);
      std::printf("%-8u %-7u | %10.2f %13.1f%% %16llu\n", kernels, groups,
                  speedup, port_busy,
                  static_cast<unsigned long long>(
                      st.tsu_intergroup_updates));
      json.begin_row();
      json.field("kernels", static_cast<std::uint32_t>(kernels));
      json.field("groups", static_cast<std::uint32_t>(groups));
      json.field("speedup", speedup);
      json.field("port_busy_pct", port_busy);
      json.field("intergroup_updates",
                 static_cast<std::uint64_t>(st.tsu_intergroup_updates));
    }
    std::printf("-----------------+--------------------------------------"
                "----\n");
  }
  std::printf("\nexpected shape: at 27 kernels the single group's port is "
              "near-saturated and extra\ngroups recover speedup; at 8 "
              "kernels one group suffices (grouping only adds\ncross-group "
              "traffic, as the paper's TSU-Group argument predicts).\n");
  return json.write_file(json_path) ? 0 : 2;
}
