// Overhead of ddmcheck execution tracing (RuntimeOptions::trace) on
// the native TFluxSoft runtime. Tracing must be cheap enough to leave
// on while reproducing results: each event is one relaxed ticket
// fetch_add plus an SPSC push into the actor's private lane, drained
// by a flusher thread off the critical path. This bench runs each
// workload with tracing off (the default null sink - one predictable
// branch per event) and on (fresh trace per run), and reports the
// relative wall-time cost. Target: < 5% traced on real benchmarks.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/suite.h"
#include "core/builder.h"
#include "core/ddmtrace.h"
#include "json_out.h"
#include "runtime/runtime.h"

namespace {

using namespace tflux;

/// ~0.5us of untraceable arithmetic per DThread body: a worst case for
/// tracing, which adds a fixed cost per event to tiny DThreads.
void spin_body(const core::ExecContext&) {
  volatile std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
}

core::Program make_spin_program(std::uint16_t kernels, int blocks,
                                int width) {
  core::ProgramBuilder b("spin_" + std::to_string(blocks) + "x" +
                         std::to_string(width));
  for (int blk = 0; blk < blocks; ++blk) {
    const core::BlockId id = b.add_block();
    for (int i = 0; i < width; ++i) {
      b.add_thread(id, "t", spin_body);
    }
  }
  return b.build(core::BuildOptions{.num_kernels = kernels});
}

struct ModeResult {
  double wall_ms_min = 0.0;
  double wall_ms_median = 0.0;
  std::uint64_t records = 0;  ///< trace records of the first run
};

ModeResult measure(const core::Program& program, std::uint16_t kernels,
                   bool traced, int repeats) {
  std::vector<double> walls;
  ModeResult r;
  for (int i = 0; i < repeats; ++i) {
    core::ExecTrace trace;
    runtime::RuntimeOptions options;
    options.num_kernels = kernels;
    if (traced) options.trace = &trace;
    runtime::Runtime rt(program, options);
    const runtime::RuntimeStats st = rt.run();
    walls.push_back(st.wall_seconds * 1e3);
    if (i == 0) r.records = trace.records.size();
  }
  std::sort(walls.begin(), walls.end());
  r.wall_ms_min = walls.front();
  r.wall_ms_median = walls[walls.size() / 2];
  return r;
}

struct Workload {
  std::string name;
  core::Program program;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("trace_overhead");

  // REPEATS=N environment override keeps the CI smoke cheap.
  int repeats = 15;
  if (const char* env = std::getenv("REPEATS")) {
    repeats = std::max(1, std::atoi(env));
  }

  std::printf("=== ddmcheck tracing overhead (TFluxSoft, best of %d) "
              "===\n\n", repeats);
  std::printf("%-10s %-8s | %10s %10s %9s %10s\n", "workload", "kernels",
              "off_ms", "on_ms", "overhead", "records");
  std::printf("--------------------+----------------------------------"
              "--------\n");

  bool app_under_5pct = true;
  for (std::uint16_t kernels : {2, 4}) {
    std::vector<Workload> workloads;
    // Worst case: tiny spin DThreads across many block transitions.
    workloads.push_back(
        {"spin", make_spin_program(kernels, 16, 8 * kernels)});
    // Realistic case: a shipped benchmark at bench-sized parameters.
    apps::DdmParams params;
    params.num_kernels = kernels;
    params.unroll = 8;
    params.tsu_capacity = 64;
    workloads.push_back(
        {"trapez", apps::build_app(apps::AppKind::kTrapez,
                                   apps::SizeClass::kSmall,
                                   apps::Platform::kNative, params)
                       .program});

    for (const Workload& w : workloads) {
      const ModeResult off = measure(w.program, kernels, false, repeats);
      const ModeResult on = measure(w.program, kernels, true, repeats);
      const double overhead_pct =
          (on.wall_ms_min / off.wall_ms_min - 1.0) * 100.0;
      if (w.name == "trapez" && overhead_pct >= 5.0) {
        app_under_5pct = false;
      }
      std::printf("%-10s %-8u | %10.4f %10.4f %8.2f%% %10llu\n",
                  w.name.c_str(), kernels, off.wall_ms_min,
                  on.wall_ms_min, overhead_pct,
                  static_cast<unsigned long long>(on.records));

      for (const bool traced : {false, true}) {
        const ModeResult& r = traced ? on : off;
        json.begin_row();
        json.field("workload", w.name);
        json.field("kernels", static_cast<std::uint32_t>(kernels));
        json.field("traced", traced);
        json.field("wall_ms_min", r.wall_ms_min);
        json.field("wall_ms_median", r.wall_ms_median);
        json.field("records", r.records);
        if (traced) json.field("overhead_pct", overhead_pct);
      }
    }
  }
  std::printf("\nexpected: tracing off is the do-nothing branch "
              "(baseline); tracing on stays\nunder 5%% on real "
              "benchmarks (spin bodies bound the worst case). %s\n",
              app_under_5pct ? "(holds on this sweep)"
                             : "(did NOT hold - see numbers)");
  return json.write_file(json_path) ? 0 : 2;
}
