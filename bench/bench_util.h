// Shared harness for the figure-reproduction benches: runs an app on a
// simulated machine configuration, computes speedup against the
// sequential baseline (paper methodology, section 5), and prints
// figure-style tables with the paper's reference values alongside.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/suite.h"
#include "machine/config.h"

namespace tflux::bench {

struct SpeedupCell {
  apps::AppKind app;
  apps::SizeClass size;
  std::uint16_t kernels;
  double speedup = 0.0;
  core::Cycles parallel_cycles = 0;
  core::Cycles baseline_cycles = 0;
};

/// Build `app` at `size` for `platform` sizes, simulate it on `config`
/// (timing plane only - bodies are not invoked), and return the
/// speedup over the sequential baseline on the same machine.
SpeedupCell measure(apps::AppKind app, apps::SizeClass size,
                    apps::Platform platform, const machine::MachineConfig&
                    config, const apps::DdmParams& params);

/// Paper methodology (section 5): evaluate the parallel program at
/// several unroll factors and report the best ("we used the variation
/// that gave the minimum execution time"). Returns the winning cell;
/// `best_unroll` (if non-null) receives the winning factor.
SpeedupCell measure_best(apps::AppKind app, apps::SizeClass size,
                         apps::Platform platform,
                         const machine::MachineConfig& config,
                         const apps::DdmParams& params,
                         const std::vector<std::uint32_t>& unrolls,
                         std::uint32_t* best_unroll = nullptr);

/// Print one figure: rows = kernel counts, columns = Small/Medium/Large
/// per app, in the paper's layout.
void print_figure(const std::string& title,
                  const std::vector<apps::AppKind>& app_order,
                  const std::vector<std::uint16_t>& kernel_counts,
                  const std::vector<SpeedupCell>& cells);

/// Geometric-free average of the Large-size speedups at `kernels`.
double average_large_speedup(const std::vector<SpeedupCell>& cells,
                             std::uint16_t kernels);

/// Mirror a figure's cells into a JSON file (no-op when `path` is
/// empty); one row per cell with app/size/kernels/speedup/cycles.
/// Returns false when the file cannot be written.
bool write_cells_json(const std::string& path, const std::string& bench,
                      const std::vector<SpeedupCell>& cells);

}  // namespace tflux::bench
