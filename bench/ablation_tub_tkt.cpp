// Reproduces the section 4.2 design-choice claims about the software
// TSU (google-benchmark):
//
//  - the segmented try-lock TUB: "to avoid long idle periods the TUB
//    is partitioned into segments... only one segment is locked by
//    each kernel at any time point". Sweeping the segment count under
//    a real multi-kernel run shows try-lock contention falling as
//    segments are added.
//
//  - Thread Indexing (the TKT): "allows the TSU Emulator to directly
//    access the correct SM, consequently eliminating any unnecessary
//    search operation". Disabling it makes the emulator pay a
//    sequential SM search per Ready Count update.
//  - the lock-free hot path vs the paper's structures: the same
//    fan-out workload run end-to-end with RuntimeOptions::lockfree
//    toggled - SPSC TUB lanes + ring mailboxes against the segmented
//    try-lock TUB + mutex mailboxes (the acceptance ablation for the
//    lock-free runtime rework).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/builder.h"
#include "json_out.h"
#include "runtime/runtime.h"

namespace {

using namespace tflux;

core::Program make_fanout_program(std::uint16_t kernels, int width) {
  // source -> width workers -> sink: every worker completion publishes
  // updates through the TUB, stressing it.
  core::ProgramBuilder b("fanout");
  const core::BlockId blk = b.add_block();
  const core::ThreadId source = b.add_thread(blk, "source", {});
  const core::ThreadId sink = b.add_thread(blk, "sink", {});
  for (int i = 0; i < width; ++i) {
    const core::ThreadId w = b.add_thread(blk, "w", {});
    b.add_arc(source, w);
    b.add_arc(w, sink);
  }
  return b.build(core::BuildOptions{.num_kernels = kernels});
}

void BM_TubSegments(benchmark::State& state) {
  const auto segments = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint16_t kKernels = 4;
  constexpr int kWidth = 4096;
  std::uint64_t trylock_failures = 0;
  std::uint64_t publishes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Program p = make_fanout_program(kKernels, kWidth);
    state.ResumeTiming();
    runtime::RuntimeOptions options;
    options.num_kernels = kKernels;
    options.lockfree = false;  // segments only exist on the mutex path
    options.tub_segments = segments;
    const runtime::RuntimeStats st = runtime::Runtime(p, options).run();
    trylock_failures += st.tub.trylock_failures;
    publishes += st.tub.publishes;
  }
  state.SetItemsProcessed(state.iterations() * kWidth);
  state.counters["trylock_fail_per_1k_publishes"] = benchmark::Counter(
      publishes ? 1000.0 * static_cast<double>(trylock_failures) /
                      static_cast<double>(publishes)
                : 0.0);
}
BENCHMARK(BM_TubSegments)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// End-to-end Kernel -> TUB -> Emulator -> Mailbox round trips on the
/// two hot paths. lockfree=1 is the SPSC rework; lockfree=0 the
/// paper-faithful mutex/try-lock baseline.
void BM_LockfreeVsMutex(benchmark::State& state) {
  const bool lockfree = state.range(0) != 0;
  const auto kernels = static_cast<std::uint16_t>(state.range(1));
  constexpr int kWidth = 4096;
  std::uint64_t full_stalls = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Program p = make_fanout_program(kernels, kWidth);
    state.ResumeTiming();
    runtime::RuntimeOptions options;
    options.num_kernels = kernels;
    options.lockfree = lockfree;
    const runtime::RuntimeStats st = runtime::Runtime(p, options).run();
    full_stalls += st.tub.full_skips;
  }
  state.SetItemsProcessed(state.iterations() * kWidth);
  state.counters["lane_full_stalls"] = benchmark::Counter(
      static_cast<double>(full_stalls), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_LockfreeVsMutex)
    ->ArgsProduct({{1, 0}, {1, 2, 4}})
    ->ArgNames({"lockfree", "kernels"})
    ->Unit(benchmark::kMillisecond);

void BM_ThreadIndexing(benchmark::State& state) {
  const bool tkt = state.range(0) != 0;
  constexpr std::uint16_t kKernels = 4;
  constexpr int kWidth = 4096;
  std::uint64_t search_steps = 0;
  std::uint64_t updates = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Program p = make_fanout_program(kKernels, kWidth);
    state.ResumeTiming();
    runtime::RuntimeOptions options;
    options.num_kernels = kKernels;
    options.thread_indexing = tkt;
    const runtime::RuntimeStats st = runtime::Runtime(p, options).run();
    search_steps += st.emulator.sm_search_steps;
    updates += st.emulator.updates_processed;
  }
  state.SetItemsProcessed(state.iterations() * kWidth);
  state.counters["sm_slots_scanned_per_update"] = benchmark::Counter(
      updates ? static_cast<double>(search_steps) /
                    static_cast<double>(updates)
              : 0.0);
}
BENCHMARK(BM_ThreadIndexing)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"tkt"})
    ->Unit(benchmark::kMillisecond);

// Software flavor of the section 4.1 extension: multiple TSU Emulator
// threads. On a many-core host the extra emulators parallelize Ready
// Count processing; on this 1-core machine the benchmark documents the
// overhead/benefit tradeoff rather than a speedup.
void BM_EmulatorGroups(benchmark::State& state) {
  const auto groups = static_cast<std::uint16_t>(state.range(0));
  constexpr std::uint16_t kKernels = 4;
  constexpr int kWidth = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    core::Program p = make_fanout_program(kKernels, kWidth);
    state.ResumeTiming();
    runtime::RuntimeOptions options;
    options.num_kernels = kKernels;
    options.tsu_groups = groups;
    runtime::Runtime(p, options).run();
  }
  state.SetItemsProcessed(state.iterations() * kWidth);
}
BENCHMARK(BM_EmulatorGroups)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"groups"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN plus the repo-wide `--json <path>` flag, translated
// into google-benchmark's own JSON reporter.
int main(int argc, char** argv) {
  const std::string json_path = tflux::bench::parse_json_flag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
