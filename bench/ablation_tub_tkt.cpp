// Reproduces the section 4.2 design-choice claims about the software
// TSU (google-benchmark):
//
//  - the segmented try-lock TUB: "to avoid long idle periods the TUB
//    is partitioned into segments... only one segment is locked by
//    each kernel at any time point". Sweeping the segment count under
//    a real multi-kernel run shows try-lock contention falling as
//    segments are added.
//
//  - Thread Indexing (the TKT): "allows the TSU Emulator to directly
//    access the correct SM, consequently eliminating any unnecessary
//    search operation". Disabling it makes the emulator pay a
//    sequential SM search per Ready Count update.
#include <benchmark/benchmark.h>

#include "core/builder.h"
#include "runtime/runtime.h"

namespace {

using namespace tflux;

core::Program make_fanout_program(std::uint16_t kernels, int width) {
  // source -> width workers -> sink: every worker completion publishes
  // updates through the TUB, stressing it.
  core::ProgramBuilder b("fanout");
  const core::BlockId blk = b.add_block();
  const core::ThreadId source = b.add_thread(blk, "source", {});
  const core::ThreadId sink = b.add_thread(blk, "sink", {});
  for (int i = 0; i < width; ++i) {
    const core::ThreadId w = b.add_thread(blk, "w", {});
    b.add_arc(source, w);
    b.add_arc(w, sink);
  }
  return b.build(core::BuildOptions{.num_kernels = kernels});
}

void BM_TubSegments(benchmark::State& state) {
  const auto segments = static_cast<std::uint32_t>(state.range(0));
  constexpr std::uint16_t kKernels = 4;
  constexpr int kWidth = 4096;
  std::uint64_t trylock_failures = 0;
  std::uint64_t publishes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Program p = make_fanout_program(kKernels, kWidth);
    state.ResumeTiming();
    runtime::RuntimeOptions options;
    options.num_kernels = kKernels;
    options.tub_segments = segments;
    const runtime::RuntimeStats st = runtime::Runtime(p, options).run();
    trylock_failures += st.tub.trylock_failures;
    publishes += st.tub.publishes;
  }
  state.SetItemsProcessed(state.iterations() * kWidth);
  state.counters["trylock_fail_per_1k_publishes"] = benchmark::Counter(
      publishes ? 1000.0 * static_cast<double>(trylock_failures) /
                      static_cast<double>(publishes)
                : 0.0);
}
BENCHMARK(BM_TubSegments)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_ThreadIndexing(benchmark::State& state) {
  const bool tkt = state.range(0) != 0;
  constexpr std::uint16_t kKernels = 4;
  constexpr int kWidth = 4096;
  std::uint64_t search_steps = 0;
  std::uint64_t updates = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::Program p = make_fanout_program(kKernels, kWidth);
    state.ResumeTiming();
    runtime::RuntimeOptions options;
    options.num_kernels = kKernels;
    options.thread_indexing = tkt;
    const runtime::RuntimeStats st = runtime::Runtime(p, options).run();
    search_steps += st.emulator.sm_search_steps;
    updates += st.emulator.updates_processed;
  }
  state.SetItemsProcessed(state.iterations() * kWidth);
  state.counters["sm_slots_scanned_per_update"] = benchmark::Counter(
      updates ? static_cast<double>(search_steps) /
                    static_cast<double>(updates)
              : 0.0);
}
BENCHMARK(BM_ThreadIndexing)
    ->Arg(1)
    ->Arg(0)
    ->ArgNames({"tkt"})
    ->Unit(benchmark::kMillisecond);

// Software flavor of the section 4.1 extension: multiple TSU Emulator
// threads. On a many-core host the extra emulators parallelize Ready
// Count processing; on this 1-core machine the benchmark documents the
// overhead/benefit tradeoff rather than a speedup.
void BM_EmulatorGroups(benchmark::State& state) {
  const auto groups = static_cast<std::uint16_t>(state.range(0));
  constexpr std::uint16_t kKernels = 4;
  constexpr int kWidth = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    core::Program p = make_fanout_program(kKernels, kWidth);
    state.ResumeTiming();
    runtime::RuntimeOptions options;
    options.num_kernels = kKernels;
    options.tsu_groups = groups;
    runtime::Runtime(p, options).run();
  }
  state.SetItemsProcessed(state.iterations() * kWidth);
}
BENCHMARK(BM_EmulatorGroups)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgNames({"groups"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
