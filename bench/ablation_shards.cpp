// Sharded-TSU ablation: flat single-domain TSU vs the clustered
// topology with hierarchical stealing (--shards/--policy=hier).
//
// Part 1 (simulated): every Figure 6 app x kernel counts 4..128 on the
// Xeon-like soft-TSU machine. The flat baseline keeps one serial TSU
// port (the section 4.1 scalability wall: every Ready Count update of
// every kernel serializes on it); the sharded configuration gives each
// 8-kernel shard its own port, intra-shard latency stays the xeon_soft
// handshake, and cross-shard operations pay the doubled hop. Expected
// shape: parity (within noise) at 4-8 kernels where one shard
// suffices, and a widening sharded win from 16 kernels on as the flat
// port saturates.
//
// Part 2 (native): for every app x kernel configuration, run the real
// runtime sharded with --policy=hier, record an execution trace, and
// replay it through ddmcheck: the emulators' steal counters
// (home/sibling/remote) must reconcile exactly with the trace replay's
// independently classified dispatch tally. Any mismatch fails the
// bench (exit 1), so the committed BENCH_shards.json is evidence the
// stats plumbing is truthful, not just plausible.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/suite.h"
#include "bench_util.h"
#include "core/check.h"
#include "core/ddmtrace.h"
#include "json_out.h"
#include "machine/config.h"
#include "runtime/runtime.h"

namespace {

std::uint16_t shards_for(std::uint16_t kernels) {
  return kernels < 16 ? 1 : kernels / 8;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("ablation_shards");

  const std::vector<std::uint16_t> kernel_counts = {4, 8, 16, 32, 64, 128};
  apps::DdmParams params;
  params.unroll = 32;  // TFluxSoft wants coarse DThreads (section 6.2.2)
  params.tsu_capacity = 1024;

  std::printf("=== Sharded TSU vs flat (Xeon soft-TSU machine, Small) "
              "===\n\n");
  std::printf("%-7s %-8s | %10s %10s %8s\n", "app", "kernels", "flat",
              "sharded", "shards");
  std::printf("-----------------+-------------------------------\n");

  bool ok = true;
  for (apps::AppKind app : apps::table1_apps()) {
    for (std::uint16_t k : kernel_counts) {
      params.num_kernels = k;
      machine::MachineConfig flat = machine::xeon_soft(k);
      flat.policy = core::PolicyKind::kAdaptive;
      const bench::SpeedupCell f =
          bench::measure(app, apps::SizeClass::kSmall,
                         apps::Platform::kNative, flat, params);

      const std::uint16_t shards = shards_for(k);
      machine::MachineConfig sharded =
          machine::xeon_soft_sharded(k, shards);
      sharded.policy = core::PolicyKind::kHier;
      const bench::SpeedupCell s =
          bench::measure(app, apps::SizeClass::kSmall,
                         apps::Platform::kNative, sharded, params);

      std::printf("%-7s %-8u | %9.2fx %9.2fx %8u\n",
                  apps::to_string(app), k, f.speedup, s.speedup, shards);
      json.begin_row();
      json.field("app", apps::to_string(app));
      json.field("kernels", static_cast<std::uint32_t>(k));
      json.field("shards", static_cast<std::uint32_t>(shards));
      json.field("flat_speedup", f.speedup);
      json.field("sharded_speedup", s.speedup);
      json.field("flat_cycles", static_cast<std::uint64_t>(f.parallel_cycles));
      json.field("sharded_cycles",
                 static_cast<std::uint64_t>(s.parallel_cycles));
    }
    std::printf("-----------------+-------------------------------\n");
  }

  // --- Part 2: native steal-stat reconciliation ----------------------
  std::printf("\n=== Native hier runs: emulator steal counters vs "
              "ddmcheck trace replay ===\n\n");
  std::printf("%-7s %-8s %-7s | %10s %6s %8s %8s %8s\n", "app", "kernels",
              "shards", "dispatches", "home", "sibling", "remote",
              "status");
  for (apps::AppKind app : apps::table1_apps()) {
    for (std::uint16_t k : kernel_counts) {
      const std::uint16_t shards = shards_for(k);
      apps::DdmParams native_params = params;
      native_params.num_kernels = k;
      apps::AppRun run =
          apps::build_app(app, apps::SizeClass::kSmall,
                          apps::Platform::kNative, native_params);

      runtime::RuntimeOptions rt;
      rt.num_kernels = k;
      rt.policy = core::PolicyKind::kHier;
      rt.shards = shards;
      core::ExecTrace trace;
      rt.trace = &trace;
      runtime::Runtime runtime(run.program, rt);
      const runtime::RuntimeStats st = runtime.run();

      const core::CheckReport report =
          core::check_trace(run.program, trace);
      std::uint64_t dispatches = 0, home = 0, local = 0, remote = 0,
                    steals_in = 0;
      for (const runtime::EmulatorStats& e : st.emulators) {
        dispatches += e.dispatches;
        home += e.home_dispatches;
        local += e.steal_local;
        remote += e.steal_remote;
        steals_in += e.steals_in;
      }
      const core::StealTally& t = report.steals;
      const bool row_ok = report.clean() && run.validate() &&
                          dispatches == t.dispatches && home == t.home &&
                          local == t.local && remote == t.remote &&
                          steals_in == remote;
      ok = ok && row_ok;
      std::printf("%-7s %-8u %-7u | %10llu %6llu %8llu %8llu %8s\n",
                  apps::to_string(app), k, shards,
                  static_cast<unsigned long long>(dispatches),
                  static_cast<unsigned long long>(home),
                  static_cast<unsigned long long>(local),
                  static_cast<unsigned long long>(remote),
                  row_ok ? "ok" : "MISMATCH");
      if (!row_ok) {
        std::printf("  replay tally: dispatches=%llu home=%llu local=%llu "
                    "remote=%llu findings=%zu\n",
                    static_cast<unsigned long long>(t.dispatches),
                    static_cast<unsigned long long>(t.home),
                    static_cast<unsigned long long>(t.local),
                    static_cast<unsigned long long>(t.remote),
                    report.findings.size());
      }
      json.begin_row();
      json.field("app", apps::to_string(app));
      json.field("kernels", static_cast<std::uint32_t>(k));
      json.field("shards", static_cast<std::uint32_t>(shards));
      json.field("native_dispatches", dispatches);
      json.field("native_home", home);
      json.field("native_steal_local", local);
      json.field("native_steal_remote", remote);
      json.field("reconciled", row_ok);
    }
  }

  std::printf("\nexpected shape: flat and sharded within noise at 4-8 "
              "kernels (one shard); from 16\nkernels the flat serial TSU "
              "port saturates and the per-shard ports pull ahead.\n");
  if (!ok) {
    std::printf("FAIL: steal counters did not reconcile with the trace "
                "replay\n");
    return 1;
  }
  return json.write_file(json_path) ? 0 : 2;
}
