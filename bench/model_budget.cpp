// ddmmodel state-space budget: exhaustively model-check every shipped
// benchmark's tuned small configuration (the same targets `tflux_model
// --all` verifies in CI) and report explored/deduped state counts,
// transition counts and wall time, plus a partial-order-reduction
// ablation row per app. The point is trend tracking: a protocol or
// small-config change that blows up the state space shows up here
// before it times out the CI sweep. Target, asserted by the summary
// line: every config verifies clean and the whole sweep stays under
// 60 seconds.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/suite.h"
#include "apps/susan_pipeline.h"
#include "core/model.h"
#include "json_out.h"
#include "tools/model.h"

namespace {

using namespace tflux;

core::Program small_config_program(apps::AppKind kind,
                                   std::uint16_t kernels) {
  std::uint32_t unroll = 0;
  std::uint32_t capacity = 0;
  tools::model_small_config(kind, unroll, capacity);
  apps::DdmParams params;
  params.num_kernels = kernels;
  params.unroll = unroll;
  params.tsu_capacity = capacity;
  if (kind == apps::AppKind::kSusanPipe) {
    // The micro pipeline tflux_model models (one frame, two strips);
    // the real small size is far beyond exhaustive exploration.
    apps::SusanPipeInput micro;
    micro.width = 32;
    micro.height = 8;
    micro.strips = 2;
    micro.frames = 1;
    return apps::build_susan_pipeline(micro, params).program;
  }
  return apps::build_app(kind, apps::SizeClass::kSmall,
                         apps::Platform::kNative, params)
      .program;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("model_budget");

  constexpr std::uint16_t kKernels = 2;
  bool ok = true;
  double total_ms = 0.0;
  std::printf("%-12s %4s %8s %9s %11s %6s %9s %8s\n", "app", "por",
              "states", "deduped", "transitions", "depth", "reduced",
              "ms");
  for (apps::AppKind kind : apps::all_apps()) {
    const core::Program program = small_config_program(kind, kKernels);
    for (bool por : {true, false}) {
      core::ModelOptions options;
      options.kernels = kKernels;
      options.por = por;
      const auto start = std::chrono::steady_clock::now();
      const core::ModelReport report = core::check_model(program, options);
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      total_ms += ms;
      ok &= report.clean();

      std::printf("%-12s %4s %8llu %9llu %11llu %6u %9llu %8.1f\n",
                  program.name().c_str(), por ? "on" : "off",
                  static_cast<unsigned long long>(report.states_explored),
                  static_cast<unsigned long long>(report.states_deduped),
                  static_cast<unsigned long long>(report.transitions),
                  report.depth,
                  static_cast<unsigned long long>(report.por_ample_hits),
                  ms);

      json.begin_row();
      json.field("app", program.name());
      json.field("kernels", static_cast<std::uint32_t>(kKernels));
      json.field("threads", program.num_threads());
      json.field("blocks", static_cast<std::uint32_t>(program.num_blocks()));
      json.field("por", por);
      json.field("verdict", core::to_string(report.verdict));
      json.field("states_explored", report.states_explored);
      json.field("states_deduped", report.states_deduped);
      json.field("transitions", report.transitions);
      json.field("depth", report.depth);
      json.field("por_ample_hits", report.por_ample_hits);
      json.field("wall_ms", ms);
    }
  }

  const bool in_budget = total_ms < 60'000.0;
  std::printf("model_budget: %s, total %.1f ms (budget 60000 ms) -> %s\n",
              ok ? "every config clean" : "NOT CLEAN", total_ms,
              (ok && in_budget) ? "ok" : "FAIL");
  if (!json.write_file(json_path)) return EXIT_FAILURE;
  return (ok && in_budget) ? EXIT_SUCCESS : EXIT_FAILURE;
}
