// Reproduces Figure 6: TFluxSoft speedups - the software-TSU platform
// on the Xeon-like machine (one core runs the TSU Emulator, so TSU
// operations cost hundreds of cycles and DThreads must be coarse:
// unroll > 16, per section 6.2.2). Kernel counts 2/4/6 as in the
// paper's 8-core machine (one core reserved for the OS, one for the
// TSU Emulator).
//
// Paper anchors (Figure 6) at 6 kernels Large: TRAPEZ ~4.9,
// MMULT ~4.9, SUSAN ~4.5, QSORT ~4.0, FFT ~3.6; at 2 kernels ~1.6-2.0;
// QSORT non-monotonic in size at 2-4 CPUs (init-thread data-transfer
// tradeoff).
#include <cstdio>

#include "bench_util.h"
#include "json_out.h"
#include "machine/config.h"

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);

  const std::vector<std::uint16_t> kernel_counts = {2, 4, 6};
  apps::DdmParams params;
  params.tsu_capacity = 512;
  // Paper methodology: best unroll per configuration. TFluxSoft needs
  // coarse DThreads (the winner is expected > 16, section 6.2.2) -
  // smaller factors are offered and lose to the software-TSU overhead.
  const std::vector<std::uint32_t> unrolls = {8, 16, 32, 64};

  std::vector<bench::SpeedupCell> cells;
  for (apps::AppKind app : apps::table1_apps()) {
    for (std::uint16_t k : kernel_counts) {
      for (apps::SizeClass size :
           {apps::SizeClass::kSmall, apps::SizeClass::kMedium,
            apps::SizeClass::kLarge}) {
        cells.push_back(bench::measure_best(app, size,
                                            apps::Platform::kNative,
                                            machine::xeon_soft(k), params,
                                            unrolls));
      }
    }
  }

  bench::print_figure(
      "Figure 6: TFluxSoft(x86) speedup (software TSU on dedicated core)",
      apps::table1_apps(), kernel_counts, cells);

  std::printf("\naverage Large speedup @6 kernels: %.1fx (paper: ~4.4x)\n",
              bench::average_large_speedup(cells, 6));
  std::printf("paper anchors @6 Large: TRAPEZ 4.9, MMULT 4.9, SUSAN 4.5, "
              "QSORT 4.0, FFT 3.6\n");
  return bench::write_cells_json(json_path, "fig6_tfluxsoft", cells) ? 0 : 2;
}
