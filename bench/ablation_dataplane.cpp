// Managed data-plane ablation: SharedVariableBuffer forwarding +
// affinity dispatch vs the implicit-shared-memory baseline
// (--no-dataplane).
//
// Part 1 (simulated): the SUSANPIPE frame pipeline (Large) on the
// Xeon-like soft-TSU machine at 4..32 kernels, three configurations
// per kernel count: the data plane off (affinity degrades to the hier
// ladder - the ablation baseline), the data plane on with hier
// stealing only, and the full affinity placement. The pipeline's
// misaligned stage tilings (T -> 2T -> T strips) defeat static home
// assignment, so the warm-placement win comes from the plane alone.
// The acceptance gate requires >= 1.3x for dataplane+affinity over
// --no-dataplane at 8 and 16 kernels (deterministic timing plane, so
// the gate is stable). Past ~32 kernels the Large frame's 48 strips
// spread too thin for alignment and the win narrows - reported, not
// gated.
//
// Part 2 (simulated, Table-1 apps): the five paper benchmarks with the
// plane on vs off under their figure-6 policy. Their phases
// synchronize through block barriers (no payload-carrying arcs), so
// the plane must be timing-neutral: any drift beyond 2% fails the
// bench.
//
// Part 3 (native): traced SUSANPIPE runs, flat and sharded, replayed
// through ddmcheck: every forwarding / affinity counter the runtime
// reports must reconcile EXACTLY with the replay's independent
// DataPlaneTally. Any mismatch exits 1, so the committed
// BENCH_dataplane.json is evidence the stats plumbing is truthful.
#include <cstdio>
#include <string>
#include <vector>

#include "apps/suite.h"
#include "bench_util.h"
#include "core/check.h"
#include "core/ddmtrace.h"
#include "json_out.h"
#include "machine/config.h"
#include "runtime/runtime.h"

namespace {

std::uint16_t shards_for(std::uint16_t kernels) {
  return kernels < 16 ? 1 : kernels / 8;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("ablation_dataplane");
  bool ok = true;

  // --- Part 1: SUSANPIPE, dataplane on/off x affinity/hier ----------
  const std::vector<std::uint16_t> kernel_counts = {4, 8, 16, 32};
  apps::DdmParams params;
  params.tsu_capacity = 1024;

  std::printf("=== SUSANPIPE (Large) on the Xeon soft-TSU machine ===\n\n");
  std::printf("%-8s | %12s %12s %12s %8s\n", "kernels", "no-dataplane",
              "dp+hier", "dp+affinity", "ratio");
  std::printf("---------+--------------------------------------------\n");
  for (std::uint16_t k : kernel_counts) {
    machine::MachineConfig nodp = machine::xeon_soft(k);
    nodp.policy = core::PolicyKind::kAffinity;  // degrades without plane
    nodp.dataplane = false;
    const bench::SpeedupCell off =
        bench::measure(apps::AppKind::kSusanPipe, apps::SizeClass::kLarge,
                       apps::Platform::kSimulated, nodp, params);

    machine::MachineConfig hier =
        machine::xeon_soft_sharded(k, shards_for(k));
    hier.policy = core::PolicyKind::kHier;
    const bench::SpeedupCell h =
        bench::measure(apps::AppKind::kSusanPipe, apps::SizeClass::kLarge,
                       apps::Platform::kSimulated, hier, params);

    machine::MachineConfig aff = machine::xeon_soft(k);
    aff.policy = core::PolicyKind::kAffinity;
    const bench::SpeedupCell a =
        bench::measure(apps::AppKind::kSusanPipe, apps::SizeClass::kLarge,
                       apps::Platform::kSimulated, aff, params);

    const double ratio =
        a.parallel_cycles == 0
            ? 0.0
            : static_cast<double>(off.parallel_cycles) /
                  static_cast<double>(a.parallel_cycles);
    // The acceptance gate: warm placement must be a real win where the
    // pipeline still has strips to align (8 and 16 kernels).
    const bool gated = (k == 8 || k == 16);
    const bool row_ok = !gated || ratio >= 1.3;
    ok = ok && row_ok;
    std::printf("%-8u | %11llu %12llu %12llu %7.3fx%s\n", k,
                static_cast<unsigned long long>(off.parallel_cycles),
                static_cast<unsigned long long>(h.parallel_cycles),
                static_cast<unsigned long long>(a.parallel_cycles), ratio,
                row_ok ? "" : "  FAIL(<1.3)");
    json.begin_row();
    json.field("app", "SUSANPIPE");
    json.field("kernels", static_cast<std::uint32_t>(k));
    json.field("no_dataplane_cycles",
               static_cast<std::uint64_t>(off.parallel_cycles));
    json.field("dp_hier_cycles",
               static_cast<std::uint64_t>(h.parallel_cycles));
    json.field("dp_affinity_cycles",
               static_cast<std::uint64_t>(a.parallel_cycles));
    json.field("affinity_vs_no_dataplane", ratio);
    json.field("gated", gated);
    json.field("row_ok", row_ok);
  }

  // --- Part 2: Table-1 apps must be timing-neutral ------------------
  std::printf("\n=== Table-1 apps: plane on vs off (must be within noise) "
              "===\n\n");
  std::printf("%-8s | %12s %12s %8s\n", "app", "dp-off", "dp-on", "drift");
  for (apps::AppKind app : apps::table1_apps()) {
    apps::DdmParams p1 = params;
    p1.unroll = 32;
    machine::MachineConfig off_cfg = machine::xeon_soft(8);
    off_cfg.dataplane = false;
    const bench::SpeedupCell off =
        bench::measure(app, apps::SizeClass::kSmall,
                       apps::Platform::kNative, off_cfg, p1);
    machine::MachineConfig on_cfg = machine::xeon_soft(8);
    const bench::SpeedupCell on =
        bench::measure(app, apps::SizeClass::kSmall,
                       apps::Platform::kNative, on_cfg, p1);
    const double drift =
        off.parallel_cycles == 0
            ? 0.0
            : static_cast<double>(on.parallel_cycles) /
                      static_cast<double>(off.parallel_cycles) -
                  1.0;
    const bool row_ok = drift < 0.02 && drift > -0.02;
    ok = ok && row_ok;
    std::printf("%-8s | %11llu %12llu %7.2f%%%s\n", apps::to_string(app),
                static_cast<unsigned long long>(off.parallel_cycles),
                static_cast<unsigned long long>(on.parallel_cycles),
                drift * 100.0, row_ok ? "" : "  FAIL(>2%)");
    json.begin_row();
    json.field("app", apps::to_string(app));
    json.field("kernels", 8u);
    json.field("no_dataplane_cycles",
               static_cast<std::uint64_t>(off.parallel_cycles));
    json.field("dp_cycles", static_cast<std::uint64_t>(on.parallel_cycles));
    json.field("drift_pct", drift * 100.0);
    json.field("row_ok", row_ok);
  }

  // --- Part 3: native counters vs ddmcheck trace replay -------------
  std::printf("\n=== Native SUSANPIPE: data-plane counters vs trace replay "
              "===\n\n");
  std::printf("%-8s %-7s | %10s %14s %8s %8s %8s\n", "kernels", "shards",
              "forwards", "bytes", "hits", "misses", "status");
  struct NativeCase {
    std::uint16_t kernels;
    std::uint16_t shards;
  };
  for (const NativeCase nc : {NativeCase{4, 0}, NativeCase{4, 2}}) {
    apps::DdmParams np = params;
    np.num_kernels = nc.kernels;
    apps::AppRun run =
        apps::build_app(apps::AppKind::kSusanPipe, apps::SizeClass::kSmall,
                        apps::Platform::kNative, np);

    core::ExecTrace trace;
    runtime::RuntimeOptions rt;
    rt.num_kernels = nc.kernels;
    rt.policy = core::PolicyKind::kAffinity;
    rt.shards = nc.shards;
    rt.trace = &trace;
    runtime::Runtime runtime(run.program, rt);
    const runtime::RuntimeStats st = runtime.run();

    std::uint64_t forwards = 0, bytes = 0;
    for (const runtime::KernelStats& ks : st.kernels) {
      forwards += ks.forwards;
      bytes += ks.bytes_forwarded;
    }
    const core::CheckReport report = core::check_trace(run.program, trace);
    const core::DataPlaneTally& t = report.dataplane;
    const bool row_ok =
        report.clean() && run.validate() && forwards == t.forwards &&
        bytes == t.bytes_forwarded &&
        st.emulator.affinity_hits == t.affinity_hits &&
        st.emulator.affinity_misses == t.affinity_misses &&
        st.emulator.affinity_cold == t.affinity_cold &&
        st.emulator.cross_shard_bytes == t.cross_shard_bytes &&
        st.emulator.affinity_hits > 0 && bytes > 0;
    ok = ok && row_ok;
    std::printf("%-8u %-7u | %10llu %14llu %8llu %8llu %8s\n", nc.kernels,
                nc.shards, static_cast<unsigned long long>(forwards),
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(st.emulator.affinity_hits),
                static_cast<unsigned long long>(st.emulator.affinity_misses),
                row_ok ? "ok" : "MISMATCH");
    if (!row_ok) {
      std::printf("  replay tally: forwards=%llu bytes=%llu hits=%llu "
                  "misses=%llu cold=%llu xshard=%llu findings=%zu\n",
                  static_cast<unsigned long long>(t.forwards),
                  static_cast<unsigned long long>(t.bytes_forwarded),
                  static_cast<unsigned long long>(t.affinity_hits),
                  static_cast<unsigned long long>(t.affinity_misses),
                  static_cast<unsigned long long>(t.affinity_cold),
                  static_cast<unsigned long long>(t.cross_shard_bytes),
                  report.findings.size());
    }
    json.begin_row();
    json.field("app", "SUSANPIPE");
    json.field("kernels", static_cast<std::uint32_t>(nc.kernels));
    json.field("shards", static_cast<std::uint32_t>(nc.shards));
    json.field("native_forwards", forwards);
    json.field("native_bytes_forwarded", bytes);
    json.field("native_affinity_hits", st.emulator.affinity_hits);
    json.field("native_affinity_misses", st.emulator.affinity_misses);
    json.field("native_affinity_cold", st.emulator.affinity_cold);
    json.field("native_cross_shard_bytes", st.emulator.cross_shard_bytes);
    json.field("reconciled", row_ok);
  }

  std::printf("\nexpected shape: warm placement wins where consecutive "
              "frames reuse planes in\nplace (first-touch amortized, "
              "cache-to-cache traffic avoided); the Table-1 apps\nare "
              "barrier-synchronized and must not move at all.\n");
  if (!ok) {
    std::printf("FAIL: data-plane gate or reconciliation failed\n");
    return 1;
  }
  return json.write_file(json_path) ? 0 : 2;
}
