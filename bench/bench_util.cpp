#include "bench_util.h"

#include <cstdio>

#include "json_out.h"
#include "machine/machine.h"

namespace tflux::bench {

SpeedupCell measure(apps::AppKind app, apps::SizeClass size,
                    apps::Platform platform,
                    const machine::MachineConfig& config,
                    const apps::DdmParams& params) {
  apps::DdmParams p = params;
  p.num_kernels = config.num_kernels;
  apps::AppRun run = apps::build_app(app, size, platform, p);

  machine::Machine m(config, run.program, /*invoke_bodies=*/false);
  const machine::MachineStats st = m.run();
  const core::Cycles baseline =
      machine::simulate_sequential(config, run.sequential_plan);

  SpeedupCell cell;
  cell.app = app;
  cell.size = size;
  cell.kernels = config.num_kernels;
  cell.parallel_cycles = st.total_cycles;
  cell.baseline_cycles = baseline;
  cell.speedup = st.total_cycles == 0
                     ? 0.0
                     : static_cast<double>(baseline) /
                           static_cast<double>(st.total_cycles);
  return cell;
}

SpeedupCell measure_best(apps::AppKind app, apps::SizeClass size,
                         apps::Platform platform,
                         const machine::MachineConfig& config,
                         const apps::DdmParams& params,
                         const std::vector<std::uint32_t>& unrolls,
                         std::uint32_t* best_unroll) {
  SpeedupCell best;
  std::uint32_t winner = 0;
  for (std::uint32_t u : unrolls) {
    apps::DdmParams p = params;
    p.unroll = u;
    const SpeedupCell cell = measure(app, size, platform, config, p);
    if (winner == 0 || cell.parallel_cycles < best.parallel_cycles) {
      best = cell;
      winner = u;
    }
  }
  if (best_unroll) *best_unroll = winner;
  return best;
}

void print_figure(const std::string& title,
                  const std::vector<apps::AppKind>& app_order,
                  const std::vector<std::uint16_t>& kernel_counts,
                  const std::vector<SpeedupCell>& cells) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-8s %-8s | %8s %8s %8s\n", "app", "kernels", "Small",
              "Medium", "Large");
  std::printf("-----------------+----------------------------\n");
  auto find = [&cells](apps::AppKind app, apps::SizeClass size,
                       std::uint16_t kernels) -> const SpeedupCell* {
    for (const SpeedupCell& c : cells) {
      if (c.app == app && c.size == size && c.kernels == kernels) return &c;
    }
    return nullptr;
  };
  for (apps::AppKind app : app_order) {
    for (std::uint16_t k : kernel_counts) {
      std::printf("%-8s %-8u |", apps::to_string(app), k);
      for (apps::SizeClass size :
           {apps::SizeClass::kSmall, apps::SizeClass::kMedium,
            apps::SizeClass::kLarge}) {
        if (const SpeedupCell* c = find(app, size, k)) {
          std::printf(" %8.2f", c->speedup);
        } else {
          std::printf(" %8s", "-");
        }
      }
      std::printf("\n");
    }
    std::printf("-----------------+----------------------------\n");
  }
}

double average_large_speedup(const std::vector<SpeedupCell>& cells,
                             std::uint16_t kernels) {
  double sum = 0.0;
  int n = 0;
  for (const SpeedupCell& c : cells) {
    if (c.kernels == kernels && c.size == apps::SizeClass::kLarge) {
      sum += c.speedup;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / n;
}

bool write_cells_json(const std::string& path, const std::string& bench,
                      const std::vector<SpeedupCell>& cells) {
  if (path.empty()) return true;
  JsonWriter json(bench);
  for (const SpeedupCell& c : cells) {
    json.begin_row();
    json.field("app", apps::to_string(c.app));
    json.field("size", apps::to_string(c.size));
    json.field("kernels", static_cast<std::uint32_t>(c.kernels));
    json.field("speedup", c.speedup);
    json.field("parallel_cycles",
               static_cast<std::uint64_t>(c.parallel_cycles));
    json.field("baseline_cycles",
               static_cast<std::uint64_t>(c.baseline_cycles));
  }
  return json.write_file(path);
}

}  // namespace tflux::bench
