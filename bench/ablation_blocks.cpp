// Ablation of the block-transition pipeline (native TFluxSoft
// runtime). The paper bounds TSU size by splitting programs into DDM
// Blocks; every boundary used to be a full-machine stall: Outlet ->
// emulator -> Inlet dispatch -> kernel round trip -> synchronous
// SyncMemory reload -> first wave. With the pipeline
// (RuntimeOptions::block_pipeline) the next block's Ready Counts are
// staged in the shadow SM generation while the current block drains,
// and the coordinator flips + dispatches the next first wave straight
// from OutletDone.
//
// This bench sweeps block count x block width x kernel count, runs
// each configuration with the pipeline on and off, and reports the
// wall time (best of N) plus the per-transition stall the pipeline
// removes: (wall_sync - wall_pipelined) / (blocks - 1).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/builder.h"
#include "json_out.h"
#include "runtime/runtime.h"

namespace {

using namespace tflux;

/// ~0.5us of untraceable arithmetic per DThread body: enough that the
/// kernels do real work, small enough that transition overheads stay
/// visible in the total.
void spin_body(const core::ExecContext&) {
  volatile std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 400; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
}

core::Program make_blocked_program(std::uint16_t kernels, int blocks,
                                   int width) {
  core::ProgramBuilder b("blocks_" + std::to_string(blocks) + "x" +
                         std::to_string(width));
  for (int blk = 0; blk < blocks; ++blk) {
    const core::BlockId id = b.add_block();
    for (int i = 0; i < width; ++i) {
      b.add_thread(id, "t", spin_body);
    }
  }
  return b.build(core::BuildOptions{.num_kernels = kernels});
}

struct ModeResult {
  double wall_ms_min = 0.0;
  double wall_ms_median = 0.0;
  runtime::EmulatorStats emulator;
};

ModeResult run_mode(const core::Program& program, std::uint16_t kernels,
                    bool pipeline, int repeats) {
  std::vector<double> walls;
  ModeResult r;
  for (int i = 0; i < repeats; ++i) {
    runtime::Runtime rt(program,
                        runtime::RuntimeOptions{
                            .num_kernels = kernels,
                            .block_pipeline = pipeline,
                        });
    const runtime::RuntimeStats st = rt.run();
    walls.push_back(st.wall_seconds * 1e3);
    if (i == 0) r.emulator = st.emulator;
  }
  std::sort(walls.begin(), walls.end());
  r.wall_ms_min = walls.front();
  r.wall_ms_median = walls[walls.size() / 2];
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("ablation_blocks");

  // REPEATS=N environment override keeps the CI smoke cheap.
  int repeats = 15;
  if (const char* env = std::getenv("REPEATS")) {
    repeats = std::max(1, std::atoi(env));
  }

  std::printf("=== Ablation: pipelined vs synchronous DDM block "
              "transitions (TFluxSoft) ===\n");
  std::printf("(block sweep, width = 8 x kernels, spin bodies, best of "
              "%d)\n\n", repeats);
  std::printf("%-8s %-7s %-6s | %10s %10s %9s %12s\n", "kernels", "blocks",
              "width", "sync_ms", "pipe_ms", "speedup", "stall_us/tr");
  std::printf("-----------------------+---------------------------------"
              "-----------\n");

  bool pipeline_wins = true;
  for (std::uint16_t kernels : {1, 2, 4}) {
    for (int blocks : {1, 4, 16, 64}) {
      const int width = 8 * kernels;
      const core::Program program =
          make_blocked_program(kernels, blocks, width);
      const ModeResult sync =
          run_mode(program, kernels, /*pipeline=*/false, repeats);
      const ModeResult pipe =
          run_mode(program, kernels, /*pipeline=*/true, repeats);
      const double speedup = sync.wall_ms_min / pipe.wall_ms_min;
      const double stall_us =
          blocks > 1 ? (sync.wall_ms_min - pipe.wall_ms_min) * 1e3 /
                           (blocks - 1)
                     : 0.0;
      if (blocks >= 4 && pipe.wall_ms_min >= sync.wall_ms_min) {
        pipeline_wins = false;
      }
      std::printf("%-8u %-7d %-6d | %10.4f %10.4f %8.3fx %12.3f\n",
                  kernels, blocks, width, sync.wall_ms_min,
                  pipe.wall_ms_min, speedup, stall_us);

      for (const bool pipelined : {false, true}) {
        const ModeResult& r = pipelined ? pipe : sync;
        json.begin_row();
        json.field("kernels", static_cast<std::uint32_t>(kernels));
        json.field("blocks", blocks);
        json.field("width", width);
        json.field("pipeline", pipelined);
        json.field("wall_ms_min", r.wall_ms_min);
        json.field("wall_ms_median", r.wall_ms_median);
        json.field("prefetch_hits", r.emulator.prefetch_hits);
        json.field("prefetch_misses", r.emulator.prefetch_misses);
        json.field("deferred_replays", r.emulator.deferred_replays);
        json.field("steal_dispatches", r.emulator.steal_dispatches);
        if (pipelined) {
          json.field("speedup_vs_sync", speedup);
          json.field("stall_us_per_transition", stall_us);
        }
      }
    }
    std::printf("-----------------------+-------------------------------"
                "-------------\n");
  }
  std::printf("\nexpected: the pipeline removes the Inlet round trip and "
              "the synchronous SM\nreload from every boundary, so "
              "multi-block runs (>= 4 blocks) finish faster at\nevery "
              "kernel count. %s\n",
              pipeline_wins ? "(holds on this sweep)"
                            : "(did NOT hold everywhere - see numbers)");
  return json.write_file(json_path) ? 0 : 2;
}
