// Reproduces Figure 5: TFluxHard speedups on the Bagle-like simulated
// Sparc multicore (hardware TSU behind the MMI), for 2/4/8/16/27
// kernels x Small/Medium/Large x all five benchmarks.
//
// Paper anchors (Figure 5): near-linear speedups at 2/4/8 kernels
// (2.0 / 4.0 / 7.9); at 27 nodes Large: TRAPEZ 25.6, SUSAN 24.8,
// MMULT 24.1, FFT ~13.6-18.8, QSORT ~7.5 (merge-tree bound); average
// ~21x across the suite.
#include <cstdio>

#include "bench_util.h"
#include "json_out.h"
#include "machine/config.h"

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);

  const std::vector<std::uint16_t> kernel_counts = {2, 4, 8, 16, 27};
  apps::DdmParams params;
  params.tsu_capacity = 512;
  // Paper methodology: best unroll per configuration. TFluxHard peaks
  // at small factors (2-4, section 6.2.2).
  const std::vector<std::uint32_t> unrolls = {1, 2, 4};

  std::vector<bench::SpeedupCell> cells;
  for (apps::AppKind app : apps::table1_apps()) {
    for (std::uint16_t k : kernel_counts) {
      for (apps::SizeClass size :
           {apps::SizeClass::kSmall, apps::SizeClass::kMedium,
            apps::SizeClass::kLarge}) {
        cells.push_back(bench::measure_best(app, size,
                                            apps::Platform::kSimulated,
                                            machine::bagle_sparc(k), params,
                                            unrolls));
      }
    }
  }

  bench::print_figure(
      "Figure 5: TFluxHard speedup (simulated Sparc multicore, HW TSU)",
      apps::table1_apps(), kernel_counts, cells);

  std::printf("\naverage Large speedup @27 kernels: %.1fx (paper: ~21x)\n",
              bench::average_large_speedup(cells, 27));
  std::printf("paper anchors @27 Large: TRAPEZ 25.6, SUSAN 24.8, "
              "MMULT 24.1, FFT 13.6-18.8, QSORT 7.5\n");
  return bench::write_cells_json(json_path, "fig5_tfluxhard", cells) ? 0 : 2;
}
