// Reproduces the unroll-factor findings (sections 5, 6.2.2, 6.3):
//   - TFluxHard reaches its best speedup already at unroll 2-4;
//   - TFluxSoft needs loops "unrolled more than 16 times" to amortize
//     the software TSU Emulation overhead;
//   - TFluxCell needs even coarser DThreads ("for MMULT high speedup is
//     only achieved with an unrolling factor of 64").
//
// Sweeps unroll over {1..64} for TRAPEZ (Medium) on all three
// platforms and prints speedup vs the platform's sequential baseline.
// TRAPEZ is the suite's finest-grained loop (a DThread at unroll 1 is
// ~2K cycles), so it exposes the per-DThread TSU overhead the way the
// paper describes; MMULT's row-sized DThreads are already megacycle-
// coarse, which is why the paper calls MMULT out specifically only on
// the Cell (where DMA/mailbox costs are the largest).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/suite.h"
#include "cell/cell_machine.h"
#include "json_out.h"
#include "machine/config.h"
#include "machine/machine.h"

namespace {

using namespace tflux;

double run_hard_or_soft(const machine::MachineConfig& cfg,
                        std::uint32_t unroll) {
  apps::DdmParams params;
  params.num_kernels = cfg.num_kernels;
  params.unroll = unroll;
  params.tsu_capacity = 512;
  const apps::Platform platform = cfg.name.find("soft") != std::string::npos
                                      ? apps::Platform::kNative
                                      : apps::Platform::kSimulated;
  apps::AppRun run = apps::build_app(apps::AppKind::kTrapez,
                                     apps::SizeClass::kMedium, platform,
                                     params);
  machine::Machine m(cfg, run.program, /*invoke_bodies=*/false);
  const core::Cycles par = m.run().total_cycles;
  const core::Cycles base =
      machine::simulate_sequential(cfg, run.sequential_plan);
  return static_cast<double>(base) / static_cast<double>(par);
}

double run_cell(std::uint32_t unroll) {
  apps::DdmParams params;
  params.num_kernels = 6;
  params.unroll = unroll;
  params.tsu_capacity = 512;
  apps::AppRun run =
      apps::build_app(apps::AppKind::kTrapez, apps::SizeClass::kMedium,
                      apps::Platform::kCell, params);
  cell::CellMachine m(cell::ps3_cell(6), run.program,
                      /*invoke_bodies=*/false);
  const core::Cycles par = m.run().total_cycles;
  const core::Cycles base = cell::simulate_sequential_cell(
      cell::ps3_cell(6), run.sequential_plan);
  return static_cast<double>(base) / static_cast<double>(par);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("ablation_unroll");
  const std::vector<std::uint32_t> unrolls = {1, 2, 4, 8, 16, 32, 64};

  std::printf("=== Ablation: unroll factor vs speedup, TRAPEZ Medium ===\n");
  std::printf("(TFluxHard: 8 kernels; TFluxSoft: 6 kernels + emulator "
              "core; TFluxCell: 6 SPEs)\n\n");
  std::printf("%-8s | %10s %10s %10s\n", "unroll", "Hard", "Soft", "Cell");
  std::printf("---------+---------------------------------\n");

  std::vector<double> hard, soft, cellv;
  for (std::uint32_t u : unrolls) {
    hard.push_back(run_hard_or_soft(machine::bagle_sparc(8), u));
    soft.push_back(run_hard_or_soft(machine::xeon_soft(6), u));
    cellv.push_back(run_cell(u));
    std::printf("%-8u | %10.2f %10.2f %10.2f\n", u, hard.back(),
                soft.back(), cellv.back());
    json.begin_row();
    json.field("unroll", u);
    json.field("hard_speedup", hard.back());
    json.field("soft_speedup", soft.back());
    json.field("cell_speedup", cellv.back());
  }

  auto best_at = [&unrolls](const std::vector<double>& v) {
    return unrolls[static_cast<std::size_t>(
        std::max_element(v.begin(), v.end()) - v.begin())];
  };
  // "Best reached by" = the smallest unroll within 5% of the peak.
  auto reached_by = [&unrolls](const std::vector<double>& v) {
    const double peak = *std::max_element(v.begin(), v.end());
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] >= 0.95 * peak) return unrolls[i];
    }
    return unrolls.back();
  };

  std::printf("\nbest-unroll summary (within 5%% of peak):\n");
  std::printf("  TFluxHard reaches its peak by unroll %u (paper: 2-4)\n",
              reached_by(hard));
  std::printf("  TFluxSoft reaches its peak by unroll %u (paper: >16)\n",
              reached_by(soft));
  std::printf("  TFluxCell reaches its peak by unroll %u (paper: 64 for "
              "MMULT)\n",
              reached_by(cellv));
  std::printf("  (peak unrolls: hard=%u soft=%u cell=%u)\n", best_at(hard),
              best_at(soft), best_at(cellv));
  return json.write_file(json_path) ? 0 : 2;
}
