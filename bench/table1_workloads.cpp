// Reproduces Table 1: the experimental workload catalog - benchmark,
// source suite, description, and the per-platform problem sizes - and
// proves each entry is live by building every (app, size, platform)
// DDM program and functionally validating the Small instances against
// their sequential references.
#include <cstdio>

#include "apps/suite.h"
#include "core/scheduler.h"
#include "json_out.h"

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("table1_workloads");

  std::printf("=== Table 1: Experimental workload description and problem "
              "sizes ===\n\n");
  std::printf("%-8s %-8s %-38s\n", "bench", "source", "description");
  std::printf("         sizes: Simulated | Native | Cell  "
              "(Small / Medium / Large)\n");
  std::printf("--------------------------------------------------------"
              "----------\n");
  for (const apps::WorkloadRow& row : apps::table1_catalog()) {
    std::printf("%-8s %-8s %-38s\n", apps::to_string(row.app),
                row.source.c_str(), row.description.c_str());
    std::printf("         S: %s\n", row.sizes_simulated.c_str());
    std::printf("         N: %s\n", row.sizes_native.c_str());
    std::printf("         C: %s\n", row.sizes_cell.c_str());
  }

  std::printf("\nbuilding every (app x size x platform) DDM program...\n");
  std::size_t built = 0;
  for (apps::AppKind app : apps::all_apps()) {
    for (apps::Platform platform :
         {apps::Platform::kSimulated, apps::Platform::kNative,
          apps::Platform::kCell}) {
      if (platform == apps::Platform::kCell &&
          (app == apps::AppKind::kFft || app == apps::AppKind::kSusanPipe)) {
        continue;  // FFT and SUSANPIPE are not part of the Cell evaluation
      }
      for (apps::SizeClass size :
           {apps::SizeClass::kSmall, apps::SizeClass::kMedium,
            apps::SizeClass::kLarge}) {
        apps::DdmParams params;
        params.num_kernels = 4;
        params.unroll = 8;
        apps::AppRun run = apps::build_app(app, size, platform, params);
        ++built;
        (void)run;
      }
    }
  }
  std::printf("  %zu programs built and validated structurally.\n", built);

  std::printf("functional check (Small, all apps, reference scheduler):\n");
  bool all_ok = true;
  for (apps::AppKind app : apps::all_apps()) {
    apps::DdmParams params;
    params.num_kernels = 4;
    params.unroll = 8;
    apps::AppRun run = apps::build_app(app, apps::SizeClass::kSmall,
                                       apps::Platform::kSimulated, params);
    core::ReferenceScheduler sched(run.program, 4);
    sched.run();
    const bool ok = run.validate();
    all_ok &= ok;
    std::printf("  %-8s %s\n", apps::to_string(app),
                ok ? "matches sequential reference" : "MISMATCH");
    json.begin_row();
    json.field("app", apps::to_string(app));
    json.field("programs_built", static_cast<std::uint64_t>(built));
    json.field("functional_ok", ok);
  }
  if (!json.write_file(json_path)) return 2;
  return all_ok ? 0 : 1;
}
