// Reproduces the section 4.1 claim: "increasing this processing time
// [of the TSU Group] from 1 to 128 CPU cycles has less than 1% impact
// on the performance" of TFluxHard.
//
// Sweeps the hardware TSU's per-operation processing time over
// {1, 4, 16, 64, 128} cycles for two representative benchmarks
// (compute-bound TRAPEZ and memory-sensitive MMULT) at 8 kernels, and
// prints the slowdown relative to the 1-cycle TSU.
#include <cstdio>
#include <vector>

#include "apps/suite.h"
#include "json_out.h"
#include "machine/config.h"
#include "machine/machine.h"

namespace {

using namespace tflux;

double delta_at(apps::AppKind app, std::uint32_t unroll,
                core::Cycles op_cycles, core::Cycles* out_cycles) {
  apps::DdmParams params;
  params.num_kernels = 8;
  params.unroll = unroll;
  params.tsu_capacity = 1024;  // one DDM block at unroll 64 (TSU size is a free parameter)
  apps::AppRun run = apps::build_app(app, apps::SizeClass::kMedium,
                                     apps::Platform::kSimulated, params);
  machine::MachineConfig cfg = machine::bagle_sparc(8);
  cfg.tsu.op_cycles = op_cycles;
  machine::Machine m(cfg, run.program, /*invoke_bodies=*/false);
  *out_cycles = m.run().total_cycles;
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  bench::JsonWriter json("ablation_tsu_latency");
  const std::vector<core::Cycles> latencies = {1, 4, 16, 64, 128};
  const std::vector<std::uint32_t> unrolls = {4, 16, 64};
  const std::vector<apps::AppKind> kApps = {apps::AppKind::kTrapez,
                                            apps::AppKind::kMmult};

  std::printf("=== Ablation: TSU processing time, 1 -> 128 cycles "
              "(TFluxHard, 8 kernels, Medium) ===\n");
  std::printf("(the claim is granularity-dependent: per-DThread TSU work "
              "is ~3 ops, so coarse\n DThreads hide a 128-cycle TSU while "
              "fine ones expose it)\n\n");
  std::printf("%-8s %-7s | %10s | %s\n", "app", "unroll", "tsu_op_cy",
              "cycles        vs 1-cycle TSU");
  std::printf("-----------------+------------+---------------------------"
              "\n");

  bool claim_holds_coarse = true;
  for (apps::AppKind app : kApps) {
    for (std::uint32_t unroll : unrolls) {
      core::Cycles base = 0;
      for (core::Cycles lat : latencies) {
        core::Cycles cycles = 0;
        delta_at(app, unroll, lat, &cycles);
        if (lat == 1) base = cycles;
        const double delta = 100.0 *
                             (static_cast<double>(cycles) -
                              static_cast<double>(base)) /
                             static_cast<double>(base);
        std::printf("%-8s %-7u | %10llu | %12llu   %+6.2f%%\n",
                    apps::to_string(app), unroll,
                    static_cast<unsigned long long>(lat),
                    static_cast<unsigned long long>(cycles), delta);
        json.begin_row();
        json.field("app", apps::to_string(app));
        json.field("unroll", unroll);
        json.field("tsu_op_cycles", static_cast<std::uint64_t>(lat));
        json.field("cycles", static_cast<std::uint64_t>(cycles));
        json.field("delta_vs_1cy_pct", delta);
        if (lat == 128 && unroll == 64 && delta >= 1.0) {
          claim_holds_coarse = false;
        }
      }
      std::printf("-----------------+------------+-----------------------"
                  "----\n");
    }
  }
  std::printf("\npaper claim (< 1%% impact at 128 cycles), at the coarse "
              "granularity the\nbest-unroll configurations use -> %s\n",
              claim_holds_coarse ? "REPRODUCED" : "NOT reproduced");
  if (!json.write_file(json_path)) return 2;
  return claim_holds_coarse ? 0 : 1;
}
