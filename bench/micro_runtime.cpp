// Microbenchmarks of the native TFluxSoft runtime primitives
// (google-benchmark).
//
// The paper's section 3.2 argues the Kernel<->DThread transition is
// minimal because Kernel and DThread code share one function;
// BM_NullDThread measures our equivalent: the full per-DThread cost
// (mailbox take, body call, Local-TSU publish, emulator update,
// dispatch) with empty bodies. Every benchmark that touches a hot-path
// structure carries a `lockfree` dimension so the SPSC-ring fast path
// can be compared against the paper-faithful mutex/try-lock baseline
// (RuntimeOptions::lockfree == false).
//
// `--json <path>` mirrors the results into google-benchmark's JSON
// format (bench/run_benchmarks.sh collects them at the repo root).
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "json_out.h"
#include "runtime/lane_tub.h"
#include "runtime/mailbox.h"
#include "runtime/runtime.h"
#include "runtime/sync_memory.h"
#include "runtime/tub.h"

namespace {

using namespace tflux;

/// Full runtime execution of `threads` empty DThreads per iteration:
/// the per-item time is the whole DThread lifecycle overhead, on
/// either hot path (lockfree=1 rings+lanes, lockfree=0 mutex TUB).
void BM_NullDThread(benchmark::State& state) {
  const auto kernels = static_cast<std::uint16_t>(state.range(0));
  const bool lockfree = state.range(1) != 0;
  constexpr int kThreads = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    core::ProgramBuilder b("null");
    const core::BlockId blk = b.add_block();
    for (int i = 0; i < kThreads; ++i) {
      b.add_thread(blk, "t", [](const core::ExecContext&) {});
    }
    core::Program p = b.build(core::BuildOptions{.num_kernels = kernels});
    state.ResumeTiming();

    runtime::Runtime rt(p, runtime::RuntimeOptions{.num_kernels = kernels,
                                                   .lockfree = lockfree});
    rt.run();
  }
  state.SetItemsProcessed(state.iterations() * kThreads);
}
BENCHMARK(BM_NullDThread)
    ->ArgsProduct({{1, 2, 4}, {1, 0}})
    ->ArgNames({"kernels", "lockfree"})
    ->Unit(benchmark::kMillisecond);

/// Single-producer publish+drain round trip through the TUB structure
/// itself: per-kernel SPSC lane (lockfree=1) vs the segmented
/// try-lock Tub (lockfree=0).
void BM_TubPublishDrain(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  const bool lockfree = state.range(1) != 0;
  std::unique_ptr<runtime::TubQueue> tub;
  if (lockfree) {
    tub = std::make_unique<runtime::LaneTub>(/*num_lanes=*/1,
                                             /*lane_capacity=*/256);
  } else {
    tub = std::make_unique<runtime::Tub>(8, 256);
  }
  std::vector<runtime::TubEntry> batch(
      batch_size, runtime::TubEntry{runtime::TubEntry::Kind::kUpdate, 7});
  std::vector<runtime::TubEntry> out;
  for (auto _ : state) {
    tub->publish(batch, 0);
    out.clear();
    benchmark::DoNotOptimize(tub->drain(out));
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_TubPublishDrain)
    ->ArgsProduct({{1, 16, 128}, {1, 0}})
    ->ArgNames({"batch", "lockfree"});

/// Mailbox put/take round trip: SPSC ring + parker vs mutex+condvar.
void BM_MailboxPutTake(benchmark::State& state) {
  const bool lockfree = state.range(0) != 0;
  runtime::Mailbox mb(lockfree, /*capacity=*/1024);
  for (auto _ : state) {
    mb.put(42);
    benchmark::DoNotOptimize(mb.take());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxPutTake)->Arg(1)->Arg(0)->ArgNames({"lockfree"});

/// The emulator's routing fast path asks every mailbox whether it is
/// backlogged before choosing a kernel; this is that probe.
void BM_MailboxProbe(benchmark::State& state) {
  const bool lockfree = state.range(0) != 0;
  runtime::Mailbox mb(lockfree, /*capacity=*/1024);
  mb.put(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mb.size());
    benchmark::DoNotOptimize(mb.probably_empty());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxProbe)->Arg(1)->Arg(0)->ArgNames({"lockfree"});

core::Program make_wide_program(std::uint16_t kernels, int width) {
  core::ProgramBuilder b("wide");
  const core::BlockId blk = b.add_block();
  for (int i = 0; i < width; ++i) {
    b.add_thread(blk, "t", {});
  }
  return b.build(core::BuildOptions{.num_kernels = kernels});
}

/// Ready Count decrement through the TKT (Thread Indexing) vs the
/// sequential SM search it replaces (paper section 4.2).
void BM_SmDecrement(benchmark::State& state) {
  const bool use_tkt = state.range(0) != 0;
  const int width = static_cast<int>(state.range(1));
  core::Program program = make_wide_program(8, width);
  runtime::SyncMemoryGroup sm(program, 8);
  std::uint64_t steps = 0;
  std::size_t next = 0;
  sm.load_block(0);
  for (auto _ : state) {
    // Cycle through threads; reload the block when all counts (all 0
    // already - threads have no producers, decrement hits the outlet
    // path) - use the outlet which has width producers.
    const core::ThreadId outlet = program.block(0).outlet;
    benchmark::DoNotOptimize(sm.decrement(outlet, use_tkt, &steps));
    if (++next == static_cast<std::size_t>(width)) {
      next = 0;
      sm.load_block(0);
    }
  }
  state.counters["search_steps_per_op"] = benchmark::Counter(
      static_cast<double>(steps),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SmDecrement)
    ->ArgsProduct({{0, 1}, {64, 512, 4096}})
    ->ArgNames({"tkt", "threads"});

}  // namespace

// BENCHMARK_MAIN plus the repo-wide `--json <path>` flag, translated
// into google-benchmark's own JSON reporter.
int main(int argc, char** argv) {
  const std::string json_path = tflux::bench::parse_json_flag(argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag;
  std::string fmt_flag;
  if (!json_path.empty()) {
    out_flag = "--benchmark_out=" + json_path;
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
