// Microbenchmarks of the native TFluxSoft runtime primitives
// (google-benchmark).
//
// The paper's section 3.2 argues the Kernel<->DThread transition is
// minimal because Kernel and DThread code share one function;
// BM_NullDThread measures our equivalent: the full per-DThread cost
// (mailbox take, body call, Local-TSU publish, emulator update,
// dispatch) with empty bodies.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "core/builder.h"
#include "runtime/mailbox.h"
#include "runtime/runtime.h"
#include "runtime/sync_memory.h"
#include "runtime/tub.h"

namespace {

using namespace tflux;

/// Full runtime execution of `threads` empty DThreads per iteration:
/// the per-item time is the whole DThread lifecycle overhead.
void BM_NullDThread(benchmark::State& state) {
  const auto kernels = static_cast<std::uint16_t>(state.range(0));
  constexpr int kThreads = 4096;
  for (auto _ : state) {
    state.PauseTiming();
    core::ProgramBuilder b("null");
    const core::BlockId blk = b.add_block();
    for (int i = 0; i < kThreads; ++i) {
      b.add_thread(blk, "t", [](const core::ExecContext&) {});
    }
    core::Program p = b.build(core::BuildOptions{.num_kernels = kernels});
    state.ResumeTiming();

    runtime::Runtime rt(p, runtime::RuntimeOptions{.num_kernels = kernels});
    rt.run();
  }
  state.SetItemsProcessed(state.iterations() * kThreads);
}
BENCHMARK(BM_NullDThread)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_TubPublishDrain(benchmark::State& state) {
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  runtime::Tub tub(8, 256);
  std::vector<runtime::TubEntry> batch(
      batch_size, runtime::TubEntry{runtime::TubEntry::Kind::kUpdate, 7});
  std::vector<runtime::TubEntry> out;
  for (auto _ : state) {
    tub.publish(batch, 0);
    out.clear();
    benchmark::DoNotOptimize(tub.drain(out));
  }
  state.SetItemsProcessed(state.iterations() * batch_size);
}
BENCHMARK(BM_TubPublishDrain)->Arg(1)->Arg(16)->Arg(128);

void BM_MailboxPutTake(benchmark::State& state) {
  runtime::Mailbox mb;
  for (auto _ : state) {
    mb.put(42);
    benchmark::DoNotOptimize(mb.take());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MailboxPutTake);

core::Program make_wide_program(std::uint16_t kernels, int width) {
  core::ProgramBuilder b("wide");
  const core::BlockId blk = b.add_block();
  for (int i = 0; i < width; ++i) {
    b.add_thread(blk, "t", {});
  }
  return b.build(core::BuildOptions{.num_kernels = kernels});
}

/// Ready Count decrement through the TKT (Thread Indexing) vs the
/// sequential SM search it replaces (paper section 4.2).
void BM_SmDecrement(benchmark::State& state) {
  const bool use_tkt = state.range(0) != 0;
  const int width = static_cast<int>(state.range(1));
  core::Program program = make_wide_program(8, width);
  runtime::SyncMemoryGroup sm(program, 8);
  std::uint64_t steps = 0;
  std::size_t next = 0;
  sm.load_block(0);
  for (auto _ : state) {
    // Cycle through threads; reload the block when all counts (all 0
    // already - threads have no producers, decrement hits the outlet
    // path) - use the outlet which has width producers.
    const core::ThreadId outlet = program.block(0).outlet;
    benchmark::DoNotOptimize(sm.decrement(outlet, use_tkt, &steps));
    if (++next == static_cast<std::size_t>(width)) {
      next = 0;
      sm.load_block(0);
    }
  }
  state.counters["search_steps_per_op"] = benchmark::Counter(
      static_cast<double>(steps),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_SmDecrement)
    ->ArgsProduct({{0, 1}, {64, 512, 4096}})
    ->ArgNames({"tkt", "threads"});

}  // namespace

BENCHMARK_MAIN();
