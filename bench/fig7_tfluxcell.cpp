// Reproduces Figure 7: TFluxCell speedups on the simulated PS3
// Cell/BE (TSU Emulator on the PPE, Kernels on 2/4/6 SPEs, DMA +
// mailbox + CommandBuffer protocol). FFT is not part of the Cell
// evaluation (Figure 7 shows only four benchmarks).
//
// Paper anchors at 6 SPEs Large: TRAPEZ 5.5, MMULT 5.1, SUSAN 5.0,
// QSORT ~2.1 (its Cell problem sizes are Local-Store-bound: 3K/6K/12K,
// so overheads are never amortized). MMULT needs unroll 64 to reach
// high speedup (section 6.3).
#include <cstdio>

#include "apps/suite.h"
#include "cell/cell_machine.h"
#include "cell/config.h"
#include "json_out.h"
#include "machine/config.h"

namespace {

struct Cell {
  tflux::apps::AppKind app;
  tflux::apps::SizeClass size;
  std::uint16_t spes;
  double speedup;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);

  const std::vector<std::uint16_t> spe_counts = {2, 4, 6};
  const std::vector<std::uint32_t> unrolls = {16, 32, 64};

  std::vector<Cell> cells;
  for (apps::AppKind app : apps::cell_apps()) {
    for (std::uint16_t spes : spe_counts) {
      for (apps::SizeClass size :
           {apps::SizeClass::kSmall, apps::SizeClass::kMedium,
            apps::SizeClass::kLarge}) {
        // Paper methodology: best unroll per configuration (Cell needs
        // the coarsest, e.g. 64 for MMULT - section 6.3).
        double best = 0.0;
        for (std::uint32_t u : unrolls) {
          apps::DdmParams params;
          params.num_kernels = spes;
          params.unroll = u;
          params.tsu_capacity = 512;
          apps::AppRun run =
              apps::build_app(app, size, apps::Platform::kCell, params);
          cell::CellMachine machine(cell::ps3_cell(spes), run.program,
                                    /*invoke_bodies=*/false);
          const cell::CellStats st = machine.run();
          const core::Cycles baseline = cell::simulate_sequential_cell(
              cell::ps3_cell(spes), run.sequential_plan);
          const double s = static_cast<double>(baseline) /
                           static_cast<double>(st.total_cycles);
          best = std::max(best, s);
        }
        cells.push_back(Cell{app, size, spes, best});
      }
    }
  }

  std::printf("\n=== Figure 7: TFluxCell speedup (simulated PS3 Cell/BE) "
              "===\n");
  std::printf("%-8s %-8s | %8s %8s %8s\n", "app", "SPEs", "Small", "Medium",
              "Large");
  std::printf("-----------------+----------------------------\n");
  for (apps::AppKind app : apps::cell_apps()) {
    for (std::uint16_t spes : spe_counts) {
      std::printf("%-8s %-8u |", apps::to_string(app), spes);
      for (apps::SizeClass size :
           {apps::SizeClass::kSmall, apps::SizeClass::kMedium,
            apps::SizeClass::kLarge}) {
        for (const Cell& c : cells) {
          if (c.app == app && c.size == size && c.spes == spes) {
            std::printf(" %8.2f", c.speedup);
          }
        }
      }
      std::printf("\n");
    }
    std::printf("-----------------+----------------------------\n");
  }

  double avg = 0.0;
  int n = 0;
  for (const Cell& c : cells) {
    if (c.spes == 6 && c.size == apps::SizeClass::kLarge) {
      avg += c.speedup;
      ++n;
    }
  }
  std::printf("\naverage Large speedup @6 SPEs: %.1fx (paper: ~4.4x)\n",
              n ? avg / n : 0.0);
  std::printf("paper anchors @6 Large: TRAPEZ 5.5, MMULT 5.1, SUSAN 5.0, "
              "QSORT ~2.1 (LS-bound sizes)\n");

  bench::JsonWriter json("fig7_tfluxcell");
  for (const Cell& c : cells) {
    json.begin_row();
    json.field("app", apps::to_string(c.app));
    json.field("size", apps::to_string(c.size));
    json.field("spes", static_cast<std::uint32_t>(c.spes));
    json.field("speedup", c.speedup);
  }
  return json.write_file(json_path) ? 0 : 2;
}
