// Reproduces the remark at the end of section 6.1.2: "The same
// benchmarks have been executed on a simulated 9 cores X86 system
// similar to Bagle. The speedup values observed and conclusions drawn
// are similar." - the Figure 5 sweep on an x86-like machine with the
// hardware TSU, at the kernel counts a 9-core chip allows (one core
// reserved for the OS => 2/4/8 kernels).
#include <cstdio>

#include "bench_util.h"
#include "json_out.h"
#include "machine/config.h"

int main(int argc, char** argv) {
  using namespace tflux;
  const std::string json_path = bench::parse_json_flag(argc, argv);

  const std::vector<std::uint16_t> kernel_counts = {2, 4, 8};
  apps::DdmParams params;
  params.tsu_capacity = 512;
  const std::vector<std::uint32_t> unrolls = {1, 2, 4};

  std::vector<bench::SpeedupCell> cells;
  for (apps::AppKind app : apps::table1_apps()) {
    for (std::uint16_t k : kernel_counts) {
      for (apps::SizeClass size :
           {apps::SizeClass::kSmall, apps::SizeClass::kMedium,
            apps::SizeClass::kLarge}) {
        cells.push_back(bench::measure_best(app, size,
                                            apps::Platform::kSimulated,
                                            machine::x86_hard(k), params,
                                            unrolls));
      }
    }
  }

  bench::print_figure(
      "Section 6.1.2 footnote: TFluxHard on a simulated 9-core x86",
      apps::table1_apps(), kernel_counts, cells);
  std::printf("\nexpected: trends similar to Figure 5 at matching kernel "
              "counts (near-linear TRAPEZ/SUSAN/MMULT, QSORT merge-bound, "
              "FFT phase-bound)\n");
  return bench::write_cells_json(json_path, "fig5x86_tfluxhard", cells) ? 0
                                                                        : 2;
}
