// Open-loop request driver for the resident multi-program executor:
// the BENCH_executor.json producer.
//
// For each pool size (8 and 16 kernels) the driver replays the same
// closed-loop mixed-app request stream (qsort + fft, small, unroll 1)
// two ways on the same kernel count:
//
//   serial   - the pre-executor shape: every request constructs a
//              full-pool Runtime, spawns pool+groups threads, runs one
//              program, joins, tears down;
//   executor - one resident Executor (width-1 tenant partitions,
//              stage depth 2) admitting requests from its bounded
//              queue into long-lived kernel workers.
//
// Each mode runs `--reps` times and the best (max-throughput) rep
// represents it - the machine's scheduler noise is one-sided, so the
// max is the stable estimator. Every rep validates all app results
// against their sequential references; a failed rep fails the bench.
//
// Acceptance gate: at 16 kernels the executor must sustain
// >= `--gate` (default 3.0) the serial throughput. The 8-kernel row
// is reported ungated: a 8-kernel serial baseline only spawns 9
// threads per request, so resident workers buy a smaller (but still
// reported) multiple there. p50/p99 latency for both modes lands in
// the JSON alongside the throughput ratio.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.h"
#include "json_out.h"
#include "tools/serve.h"

namespace {

using namespace tflux;

tools::ServeOptions stream_options(std::uint16_t pool, bool serial,
                                   std::uint32_t requests) {
  tools::ServeOptions o;
  o.pool_kernels = pool;
  o.partition_width = 1;
  o.stage_depth = 2;
  o.queue_capacity = 64;
  o.requests = requests;
  o.rate = 0.0;  // closed loop: backpressure paces the stream
  o.apps = {apps::AppKind::kQsort, apps::AppKind::kFft};
  o.size = apps::SizeClass::kSmall;
  o.unroll = 1;
  o.serial = serial;
  o.validate = true;
  return o;
}

/// Best-of-N replay of one mode. Returns false when any rep failed
/// validation (the report then carries the failing rep).
bool best_of(const tools::ServeOptions& options, int reps,
             tools::ServeReport& best) {
  for (int r = 0; r < reps; ++r) {
    tools::ServeReport rep;
    std::ostringstream sink;
    if (tools::run_serve(options, sink, &rep) != 0) {
      std::fputs(sink.str().c_str(), stderr);
      best = rep;
      return false;
    }
    if (r == 0 || rep.throughput_rps > best.throughput_rps) best = rep;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::parse_json_flag(argc, argv);
  std::uint32_t requests = 120;
  int reps = 3;
  double gate = 3.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--requests=", 0) == 0) {
      requests = static_cast<std::uint32_t>(std::stoul(arg.substr(11)));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::stoi(arg.substr(7));
    } else if (arg.rfind("--gate=", 0) == 0) {
      gate = std::stod(arg.substr(7));
    } else {
      std::fprintf(stderr,
                   "usage: request_driver [--requests=N] [--reps=K] "
                   "[--gate=X] [--json FILE]\n");
      return 2;
    }
  }

  bench::JsonWriter json("request_driver");
  bool ok = true;
  std::printf(
      "=== resident executor vs per-request runtime (qsort+fft, small, "
      "unroll 1, %u requests, best of %d) ===\n\n",
      requests, reps);

  for (std::uint16_t pool : {std::uint16_t{8}, std::uint16_t{16}}) {
    const bool gated = pool == 16;
    tools::ServeReport serial;
    tools::ServeReport exec;
    try {
      if (!best_of(stream_options(pool, true, requests), reps, serial) ||
          !best_of(stream_options(pool, false, requests), reps, exec)) {
        std::fprintf(stderr, "request_driver: a rep failed at pool %u\n",
                     pool);
        ok = false;
      }
    } catch (const core::TFluxError& e) {
      std::fprintf(stderr, "request_driver: %s\n", e.what());
      return 2;
    }
    const double speedup = serial.throughput_rps > 0.0
                               ? exec.throughput_rps / serial.throughput_rps
                               : 0.0;
    const bool pass = !gated || speedup >= gate;
    std::printf("pool %2u: serial %8.1f req/s (p50 %6.2f ms, p99 %6.2f ms)\n",
                pool, serial.throughput_rps, serial.latency.p50_seconds * 1e3,
                serial.latency.p99_seconds * 1e3);
    std::printf("         executor %6.1f req/s (p50 %6.2f ms, p99 %6.2f ms)\n",
                exec.throughput_rps, exec.latency.p50_seconds * 1e3,
                exec.latency.p99_seconds * 1e3);
    if (gated) {
      std::printf("         speedup %.2fx  [%s %.1fx]\n\n", speedup,
                  pass ? "gate ok, >=" : "GATE FAIL, <", gate);
    } else {
      std::printf("         speedup %.2fx  (reported, ungated)\n\n", speedup);
    }
    json.begin_row();
    json.field("pool_kernels", static_cast<std::uint64_t>(pool));
    json.field("apps", "qsort,fft");
    json.field("size", "small");
    json.field("unroll", std::uint32_t{1});
    json.field("requests", requests);
    json.field("reps", reps);
    json.field("partition_width", std::uint32_t{1});
    json.field("stage_depth", std::uint32_t{2});
    json.field("serial_rps", serial.throughput_rps);
    json.field("serial_p50_seconds", serial.latency.p50_seconds);
    json.field("serial_p99_seconds", serial.latency.p99_seconds);
    json.field("executor_rps", exec.throughput_rps);
    json.field("executor_p50_seconds", exec.latency.p50_seconds);
    json.field("executor_p99_seconds", exec.latency.p99_seconds);
    json.field("executor_queue_depth_peak",
               static_cast<std::uint64_t>(exec.queue_depth_peak));
    json.field("executor_fairness_ratio", exec.fairness_ratio);
    json.field("speedup", speedup);
    json.field("gated", gated);
    json.field("gate", gated ? gate : 0.0);
    json.field("validated", serial.validated && exec.validated);
    json.field("pass", pass && serial.validated && exec.validated);
    if (gated && !pass) ok = false;
    if (!serial.validated || !exec.validated) ok = false;
  }

  if (!json.write_file(json_path)) return 1;
  if (!ok) {
    std::printf("request_driver: FAILED\n");
    return 1;
  }
  std::printf("request_driver: all gates passed\n");
  return 0;
}
