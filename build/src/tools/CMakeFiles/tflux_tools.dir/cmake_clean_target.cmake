file(REMOVE_RECURSE
  "libtflux_tools.a"
)
