# Empty compiler generated dependencies file for tflux_tools.
# This may be replaced when dependencies are built.
