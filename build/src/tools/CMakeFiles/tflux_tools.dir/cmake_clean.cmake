file(REMOVE_RECURSE
  "CMakeFiles/tflux_tools.dir/cli.cpp.o"
  "CMakeFiles/tflux_tools.dir/cli.cpp.o.d"
  "libtflux_tools.a"
  "libtflux_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
