# Empty dependencies file for tflux_run.
# This may be replaced when dependencies are built.
