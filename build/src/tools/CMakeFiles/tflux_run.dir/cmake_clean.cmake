file(REMOVE_RECURSE
  "CMakeFiles/tflux_run.dir/tflux_run_main.cpp.o"
  "CMakeFiles/tflux_run.dir/tflux_run_main.cpp.o.d"
  "tflux_run"
  "tflux_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
