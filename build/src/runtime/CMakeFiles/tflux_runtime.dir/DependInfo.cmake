
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/emulator.cpp" "src/runtime/CMakeFiles/tflux_runtime.dir/emulator.cpp.o" "gcc" "src/runtime/CMakeFiles/tflux_runtime.dir/emulator.cpp.o.d"
  "/root/repo/src/runtime/kernel.cpp" "src/runtime/CMakeFiles/tflux_runtime.dir/kernel.cpp.o" "gcc" "src/runtime/CMakeFiles/tflux_runtime.dir/kernel.cpp.o.d"
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/tflux_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/tflux_runtime.dir/runtime.cpp.o.d"
  "/root/repo/src/runtime/sync_memory.cpp" "src/runtime/CMakeFiles/tflux_runtime.dir/sync_memory.cpp.o" "gcc" "src/runtime/CMakeFiles/tflux_runtime.dir/sync_memory.cpp.o.d"
  "/root/repo/src/runtime/tub.cpp" "src/runtime/CMakeFiles/tflux_runtime.dir/tub.cpp.o" "gcc" "src/runtime/CMakeFiles/tflux_runtime.dir/tub.cpp.o.d"
  "/root/repo/src/runtime/tub_group.cpp" "src/runtime/CMakeFiles/tflux_runtime.dir/tub_group.cpp.o" "gcc" "src/runtime/CMakeFiles/tflux_runtime.dir/tub_group.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tflux_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
