file(REMOVE_RECURSE
  "CMakeFiles/tflux_runtime.dir/emulator.cpp.o"
  "CMakeFiles/tflux_runtime.dir/emulator.cpp.o.d"
  "CMakeFiles/tflux_runtime.dir/kernel.cpp.o"
  "CMakeFiles/tflux_runtime.dir/kernel.cpp.o.d"
  "CMakeFiles/tflux_runtime.dir/runtime.cpp.o"
  "CMakeFiles/tflux_runtime.dir/runtime.cpp.o.d"
  "CMakeFiles/tflux_runtime.dir/sync_memory.cpp.o"
  "CMakeFiles/tflux_runtime.dir/sync_memory.cpp.o.d"
  "CMakeFiles/tflux_runtime.dir/tub.cpp.o"
  "CMakeFiles/tflux_runtime.dir/tub.cpp.o.d"
  "CMakeFiles/tflux_runtime.dir/tub_group.cpp.o"
  "CMakeFiles/tflux_runtime.dir/tub_group.cpp.o.d"
  "libtflux_runtime.a"
  "libtflux_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
