# Empty compiler generated dependencies file for tflux_runtime.
# This may be replaced when dependencies are built.
