file(REMOVE_RECURSE
  "libtflux_runtime.a"
)
