
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/tflux_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/tflux_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/mmult.cpp" "src/apps/CMakeFiles/tflux_apps.dir/mmult.cpp.o" "gcc" "src/apps/CMakeFiles/tflux_apps.dir/mmult.cpp.o.d"
  "/root/repo/src/apps/qsort.cpp" "src/apps/CMakeFiles/tflux_apps.dir/qsort.cpp.o" "gcc" "src/apps/CMakeFiles/tflux_apps.dir/qsort.cpp.o.d"
  "/root/repo/src/apps/suite.cpp" "src/apps/CMakeFiles/tflux_apps.dir/suite.cpp.o" "gcc" "src/apps/CMakeFiles/tflux_apps.dir/suite.cpp.o.d"
  "/root/repo/src/apps/susan.cpp" "src/apps/CMakeFiles/tflux_apps.dir/susan.cpp.o" "gcc" "src/apps/CMakeFiles/tflux_apps.dir/susan.cpp.o.d"
  "/root/repo/src/apps/trapez.cpp" "src/apps/CMakeFiles/tflux_apps.dir/trapez.cpp.o" "gcc" "src/apps/CMakeFiles/tflux_apps.dir/trapez.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tflux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tflux_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
