file(REMOVE_RECURSE
  "libtflux_apps.a"
)
