# Empty compiler generated dependencies file for tflux_apps.
# This may be replaced when dependencies are built.
