file(REMOVE_RECURSE
  "CMakeFiles/tflux_apps.dir/fft.cpp.o"
  "CMakeFiles/tflux_apps.dir/fft.cpp.o.d"
  "CMakeFiles/tflux_apps.dir/mmult.cpp.o"
  "CMakeFiles/tflux_apps.dir/mmult.cpp.o.d"
  "CMakeFiles/tflux_apps.dir/qsort.cpp.o"
  "CMakeFiles/tflux_apps.dir/qsort.cpp.o.d"
  "CMakeFiles/tflux_apps.dir/suite.cpp.o"
  "CMakeFiles/tflux_apps.dir/suite.cpp.o.d"
  "CMakeFiles/tflux_apps.dir/susan.cpp.o"
  "CMakeFiles/tflux_apps.dir/susan.cpp.o.d"
  "CMakeFiles/tflux_apps.dir/trapez.cpp.o"
  "CMakeFiles/tflux_apps.dir/trapez.cpp.o.d"
  "libtflux_apps.a"
  "libtflux_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
