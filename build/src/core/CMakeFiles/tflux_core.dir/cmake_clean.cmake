file(REMOVE_RECURSE
  "CMakeFiles/tflux_core.dir/analysis.cpp.o"
  "CMakeFiles/tflux_core.dir/analysis.cpp.o.d"
  "CMakeFiles/tflux_core.dir/builder.cpp.o"
  "CMakeFiles/tflux_core.dir/builder.cpp.o.d"
  "CMakeFiles/tflux_core.dir/footprint.cpp.o"
  "CMakeFiles/tflux_core.dir/footprint.cpp.o.d"
  "CMakeFiles/tflux_core.dir/graph_io.cpp.o"
  "CMakeFiles/tflux_core.dir/graph_io.cpp.o.d"
  "CMakeFiles/tflux_core.dir/ready_set.cpp.o"
  "CMakeFiles/tflux_core.dir/ready_set.cpp.o.d"
  "CMakeFiles/tflux_core.dir/scheduler.cpp.o"
  "CMakeFiles/tflux_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/tflux_core.dir/tsu_state.cpp.o"
  "CMakeFiles/tflux_core.dir/tsu_state.cpp.o.d"
  "CMakeFiles/tflux_core.dir/unroll.cpp.o"
  "CMakeFiles/tflux_core.dir/unroll.cpp.o.d"
  "libtflux_core.a"
  "libtflux_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
