# Empty compiler generated dependencies file for tflux_core.
# This may be replaced when dependencies are built.
