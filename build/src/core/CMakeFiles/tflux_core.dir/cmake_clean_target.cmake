file(REMOVE_RECURSE
  "libtflux_core.a"
)
