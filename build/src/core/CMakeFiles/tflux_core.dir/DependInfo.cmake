
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/tflux_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/tflux_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/builder.cpp" "src/core/CMakeFiles/tflux_core.dir/builder.cpp.o" "gcc" "src/core/CMakeFiles/tflux_core.dir/builder.cpp.o.d"
  "/root/repo/src/core/footprint.cpp" "src/core/CMakeFiles/tflux_core.dir/footprint.cpp.o" "gcc" "src/core/CMakeFiles/tflux_core.dir/footprint.cpp.o.d"
  "/root/repo/src/core/graph_io.cpp" "src/core/CMakeFiles/tflux_core.dir/graph_io.cpp.o" "gcc" "src/core/CMakeFiles/tflux_core.dir/graph_io.cpp.o.d"
  "/root/repo/src/core/ready_set.cpp" "src/core/CMakeFiles/tflux_core.dir/ready_set.cpp.o" "gcc" "src/core/CMakeFiles/tflux_core.dir/ready_set.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/tflux_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/tflux_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/core/tsu_state.cpp" "src/core/CMakeFiles/tflux_core.dir/tsu_state.cpp.o" "gcc" "src/core/CMakeFiles/tflux_core.dir/tsu_state.cpp.o.d"
  "/root/repo/src/core/unroll.cpp" "src/core/CMakeFiles/tflux_core.dir/unroll.cpp.o" "gcc" "src/core/CMakeFiles/tflux_core.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
