
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/cache.cpp" "src/machine/CMakeFiles/tflux_machine.dir/cache.cpp.o" "gcc" "src/machine/CMakeFiles/tflux_machine.dir/cache.cpp.o.d"
  "/root/repo/src/machine/config.cpp" "src/machine/CMakeFiles/tflux_machine.dir/config.cpp.o" "gcc" "src/machine/CMakeFiles/tflux_machine.dir/config.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/machine/CMakeFiles/tflux_machine.dir/machine.cpp.o" "gcc" "src/machine/CMakeFiles/tflux_machine.dir/machine.cpp.o.d"
  "/root/repo/src/machine/memory_system.cpp" "src/machine/CMakeFiles/tflux_machine.dir/memory_system.cpp.o" "gcc" "src/machine/CMakeFiles/tflux_machine.dir/memory_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tflux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tflux_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
