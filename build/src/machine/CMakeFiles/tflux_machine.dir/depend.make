# Empty dependencies file for tflux_machine.
# This may be replaced when dependencies are built.
