file(REMOVE_RECURSE
  "libtflux_machine.a"
)
