file(REMOVE_RECURSE
  "CMakeFiles/tflux_machine.dir/cache.cpp.o"
  "CMakeFiles/tflux_machine.dir/cache.cpp.o.d"
  "CMakeFiles/tflux_machine.dir/config.cpp.o"
  "CMakeFiles/tflux_machine.dir/config.cpp.o.d"
  "CMakeFiles/tflux_machine.dir/machine.cpp.o"
  "CMakeFiles/tflux_machine.dir/machine.cpp.o.d"
  "CMakeFiles/tflux_machine.dir/memory_system.cpp.o"
  "CMakeFiles/tflux_machine.dir/memory_system.cpp.o.d"
  "libtflux_machine.a"
  "libtflux_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
