# CMake generated Testfile for 
# Source directory: /root/repo/src/ddmcpp
# Build directory: /root/repo/build/src/ddmcpp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
