file(REMOVE_RECURSE
  "CMakeFiles/ddmcpp.dir/ddmcpp_main.cpp.o"
  "CMakeFiles/ddmcpp.dir/ddmcpp_main.cpp.o.d"
  "ddmcpp"
  "ddmcpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddmcpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
