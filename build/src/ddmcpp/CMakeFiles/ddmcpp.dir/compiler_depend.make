# Empty compiler generated dependencies file for ddmcpp.
# This may be replaced when dependencies are built.
