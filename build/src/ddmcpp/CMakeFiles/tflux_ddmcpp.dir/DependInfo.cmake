
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddmcpp/codegen.cpp" "src/ddmcpp/CMakeFiles/tflux_ddmcpp.dir/codegen.cpp.o" "gcc" "src/ddmcpp/CMakeFiles/tflux_ddmcpp.dir/codegen.cpp.o.d"
  "/root/repo/src/ddmcpp/parser.cpp" "src/ddmcpp/CMakeFiles/tflux_ddmcpp.dir/parser.cpp.o" "gcc" "src/ddmcpp/CMakeFiles/tflux_ddmcpp.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tflux_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
