file(REMOVE_RECURSE
  "libtflux_ddmcpp.a"
)
