file(REMOVE_RECURSE
  "CMakeFiles/tflux_ddmcpp.dir/codegen.cpp.o"
  "CMakeFiles/tflux_ddmcpp.dir/codegen.cpp.o.d"
  "CMakeFiles/tflux_ddmcpp.dir/parser.cpp.o"
  "CMakeFiles/tflux_ddmcpp.dir/parser.cpp.o.d"
  "libtflux_ddmcpp.a"
  "libtflux_ddmcpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_ddmcpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
