# Empty compiler generated dependencies file for tflux_ddmcpp.
# This may be replaced when dependencies are built.
