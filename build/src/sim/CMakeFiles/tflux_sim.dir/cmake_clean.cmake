file(REMOVE_RECURSE
  "CMakeFiles/tflux_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tflux_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tflux_sim.dir/histogram.cpp.o"
  "CMakeFiles/tflux_sim.dir/histogram.cpp.o.d"
  "CMakeFiles/tflux_sim.dir/trace.cpp.o"
  "CMakeFiles/tflux_sim.dir/trace.cpp.o.d"
  "libtflux_sim.a"
  "libtflux_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
