file(REMOVE_RECURSE
  "libtflux_sim.a"
)
