# Empty dependencies file for tflux_sim.
# This may be replaced when dependencies are built.
