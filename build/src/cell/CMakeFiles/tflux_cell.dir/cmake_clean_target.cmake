file(REMOVE_RECURSE
  "libtflux_cell.a"
)
