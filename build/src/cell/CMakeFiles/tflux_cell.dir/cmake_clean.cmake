file(REMOVE_RECURSE
  "CMakeFiles/tflux_cell.dir/cell_machine.cpp.o"
  "CMakeFiles/tflux_cell.dir/cell_machine.cpp.o.d"
  "CMakeFiles/tflux_cell.dir/config.cpp.o"
  "CMakeFiles/tflux_cell.dir/config.cpp.o.d"
  "CMakeFiles/tflux_cell.dir/local_store.cpp.o"
  "CMakeFiles/tflux_cell.dir/local_store.cpp.o.d"
  "libtflux_cell.a"
  "libtflux_cell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
