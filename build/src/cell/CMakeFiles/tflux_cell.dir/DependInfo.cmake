
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cell/cell_machine.cpp" "src/cell/CMakeFiles/tflux_cell.dir/cell_machine.cpp.o" "gcc" "src/cell/CMakeFiles/tflux_cell.dir/cell_machine.cpp.o.d"
  "/root/repo/src/cell/config.cpp" "src/cell/CMakeFiles/tflux_cell.dir/config.cpp.o" "gcc" "src/cell/CMakeFiles/tflux_cell.dir/config.cpp.o.d"
  "/root/repo/src/cell/local_store.cpp" "src/cell/CMakeFiles/tflux_cell.dir/local_store.cpp.o" "gcc" "src/cell/CMakeFiles/tflux_cell.dir/local_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tflux_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tflux_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
