# Empty dependencies file for tflux_cell.
# This may be replaced when dependencies are built.
