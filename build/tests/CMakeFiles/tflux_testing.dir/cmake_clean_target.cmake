file(REMOVE_RECURSE
  "libtflux_testing.a"
)
