file(REMOVE_RECURSE
  "CMakeFiles/tflux_testing.dir/testing/random_graph.cpp.o"
  "CMakeFiles/tflux_testing.dir/testing/random_graph.cpp.o.d"
  "libtflux_testing.a"
  "libtflux_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
