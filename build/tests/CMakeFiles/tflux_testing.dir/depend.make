# Empty dependencies file for tflux_testing.
# This may be replaced when dependencies are built.
