# Empty dependencies file for core_tsu_state_test.
# This may be replaced when dependencies are built.
