file(REMOVE_RECURSE
  "CMakeFiles/sim_histogram_test.dir/sim_histogram_test.cpp.o"
  "CMakeFiles/sim_histogram_test.dir/sim_histogram_test.cpp.o.d"
  "sim_histogram_test"
  "sim_histogram_test.pdb"
  "sim_histogram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
