# Empty dependencies file for sim_histogram_test.
# This may be replaced when dependencies are built.
