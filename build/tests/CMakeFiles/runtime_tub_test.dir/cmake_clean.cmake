file(REMOVE_RECURSE
  "CMakeFiles/runtime_tub_test.dir/runtime_tub_test.cpp.o"
  "CMakeFiles/runtime_tub_test.dir/runtime_tub_test.cpp.o.d"
  "runtime_tub_test"
  "runtime_tub_test.pdb"
  "runtime_tub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_tub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
