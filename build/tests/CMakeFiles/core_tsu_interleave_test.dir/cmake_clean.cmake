file(REMOVE_RECURSE
  "CMakeFiles/core_tsu_interleave_test.dir/core_tsu_interleave_test.cpp.o"
  "CMakeFiles/core_tsu_interleave_test.dir/core_tsu_interleave_test.cpp.o.d"
  "core_tsu_interleave_test"
  "core_tsu_interleave_test.pdb"
  "core_tsu_interleave_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tsu_interleave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
