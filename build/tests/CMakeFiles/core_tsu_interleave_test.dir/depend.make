# Empty dependencies file for core_tsu_interleave_test.
# This may be replaced when dependencies are built.
