# Empty dependencies file for core_graph_io_test.
# This may be replaced when dependencies are built.
