# Empty dependencies file for apps_property_test.
# This may be replaced when dependencies are built.
