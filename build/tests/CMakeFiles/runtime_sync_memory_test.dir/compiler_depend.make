# Empty compiler generated dependencies file for runtime_sync_memory_test.
# This may be replaced when dependencies are built.
