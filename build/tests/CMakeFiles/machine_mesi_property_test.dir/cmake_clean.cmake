file(REMOVE_RECURSE
  "CMakeFiles/machine_mesi_property_test.dir/machine_mesi_property_test.cpp.o"
  "CMakeFiles/machine_mesi_property_test.dir/machine_mesi_property_test.cpp.o.d"
  "machine_mesi_property_test"
  "machine_mesi_property_test.pdb"
  "machine_mesi_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_mesi_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
