# Empty compiler generated dependencies file for machine_mesi_property_test.
# This may be replaced when dependencies are built.
