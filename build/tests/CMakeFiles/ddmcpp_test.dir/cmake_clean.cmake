file(REMOVE_RECURSE
  "CMakeFiles/ddmcpp_test.dir/ddmcpp_test.cpp.o"
  "CMakeFiles/ddmcpp_test.dir/ddmcpp_test.cpp.o.d"
  "ddmcpp_test"
  "ddmcpp_test.pdb"
  "ddmcpp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddmcpp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
