# Empty compiler generated dependencies file for ddmcpp_test.
# This may be replaced when dependencies are built.
