file(REMOVE_RECURSE
  "CMakeFiles/core_unroll_test.dir/core_unroll_test.cpp.o"
  "CMakeFiles/core_unroll_test.dir/core_unroll_test.cpp.o.d"
  "core_unroll_test"
  "core_unroll_test.pdb"
  "core_unroll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_unroll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
