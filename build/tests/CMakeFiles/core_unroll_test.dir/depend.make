# Empty dependencies file for core_unroll_test.
# This may be replaced when dependencies are built.
