file(REMOVE_RECURSE
  "CMakeFiles/runtime_runtime_test.dir/runtime_runtime_test.cpp.o"
  "CMakeFiles/runtime_runtime_test.dir/runtime_runtime_test.cpp.o.d"
  "runtime_runtime_test"
  "runtime_runtime_test.pdb"
  "runtime_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
