# Empty compiler generated dependencies file for machine_machine_test.
# This may be replaced when dependencies are built.
