file(REMOVE_RECURSE
  "CMakeFiles/machine_cache_test.dir/machine_cache_test.cpp.o"
  "CMakeFiles/machine_cache_test.dir/machine_cache_test.cpp.o.d"
  "machine_cache_test"
  "machine_cache_test.pdb"
  "machine_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
