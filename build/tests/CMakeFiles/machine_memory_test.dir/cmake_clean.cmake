file(REMOVE_RECURSE
  "CMakeFiles/machine_memory_test.dir/machine_memory_test.cpp.o"
  "CMakeFiles/machine_memory_test.dir/machine_memory_test.cpp.o.d"
  "machine_memory_test"
  "machine_memory_test.pdb"
  "machine_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
