file(REMOVE_RECURSE
  "CMakeFiles/pi_ddm_soft.dir/pi_ddm_soft_generated.cpp.o"
  "CMakeFiles/pi_ddm_soft.dir/pi_ddm_soft_generated.cpp.o.d"
  "pi_ddm_soft"
  "pi_ddm_soft.pdb"
  "pi_ddm_soft_generated.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_ddm_soft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
