# Empty compiler generated dependencies file for pi_ddm_soft.
# This may be replaced when dependencies are built.
