file(REMOVE_RECURSE
  "CMakeFiles/graph_inspect.dir/graph_inspect.cpp.o"
  "CMakeFiles/graph_inspect.dir/graph_inspect.cpp.o.d"
  "graph_inspect"
  "graph_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
