# Empty compiler generated dependencies file for graph_inspect.
# This may be replaced when dependencies are built.
