file(REMOVE_RECURSE
  "CMakeFiles/pi_ddm_hard.dir/pi_ddm_hard_generated.cpp.o"
  "CMakeFiles/pi_ddm_hard.dir/pi_ddm_hard_generated.cpp.o.d"
  "pi_ddm_hard"
  "pi_ddm_hard.pdb"
  "pi_ddm_hard_generated.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_ddm_hard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
