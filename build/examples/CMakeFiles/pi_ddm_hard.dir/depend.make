# Empty dependencies file for pi_ddm_hard.
# This may be replaced when dependencies are built.
