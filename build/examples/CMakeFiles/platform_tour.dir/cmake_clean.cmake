file(REMOVE_RECURSE
  "CMakeFiles/platform_tour.dir/platform_tour.cpp.o"
  "CMakeFiles/platform_tour.dir/platform_tour.cpp.o.d"
  "platform_tour"
  "platform_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
