# Empty compiler generated dependencies file for pi_ddm_cell.
# This may be replaced when dependencies are built.
