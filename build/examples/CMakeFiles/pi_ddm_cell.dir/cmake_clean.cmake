file(REMOVE_RECURSE
  "CMakeFiles/pi_ddm_cell.dir/pi_ddm_cell_generated.cpp.o"
  "CMakeFiles/pi_ddm_cell.dir/pi_ddm_cell_generated.cpp.o.d"
  "pi_ddm_cell"
  "pi_ddm_cell.pdb"
  "pi_ddm_cell_generated.cpp"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pi_ddm_cell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
