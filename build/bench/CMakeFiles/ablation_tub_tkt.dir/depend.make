# Empty dependencies file for ablation_tub_tkt.
# This may be replaced when dependencies are built.
