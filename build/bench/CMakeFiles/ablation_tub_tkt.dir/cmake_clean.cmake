file(REMOVE_RECURSE
  "CMakeFiles/ablation_tub_tkt.dir/ablation_tub_tkt.cpp.o"
  "CMakeFiles/ablation_tub_tkt.dir/ablation_tub_tkt.cpp.o.d"
  "ablation_tub_tkt"
  "ablation_tub_tkt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tub_tkt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
