file(REMOVE_RECURSE
  "../lib/libtflux_bench_util.a"
)
