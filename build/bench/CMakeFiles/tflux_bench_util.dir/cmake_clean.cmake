file(REMOVE_RECURSE
  "../lib/libtflux_bench_util.a"
  "../lib/libtflux_bench_util.pdb"
  "CMakeFiles/tflux_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/tflux_bench_util.dir/bench_util.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tflux_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
