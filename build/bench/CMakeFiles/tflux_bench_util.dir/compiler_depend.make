# Empty compiler generated dependencies file for tflux_bench_util.
# This may be replaced when dependencies are built.
