# Empty dependencies file for fig7_tfluxcell.
# This may be replaced when dependencies are built.
