file(REMOVE_RECURSE
  "CMakeFiles/fig7_tfluxcell.dir/fig7_tfluxcell.cpp.o"
  "CMakeFiles/fig7_tfluxcell.dir/fig7_tfluxcell.cpp.o.d"
  "fig7_tfluxcell"
  "fig7_tfluxcell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tfluxcell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
