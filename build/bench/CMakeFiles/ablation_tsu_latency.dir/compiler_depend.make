# Empty compiler generated dependencies file for ablation_tsu_latency.
# This may be replaced when dependencies are built.
