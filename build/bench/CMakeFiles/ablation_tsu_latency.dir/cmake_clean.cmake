file(REMOVE_RECURSE
  "CMakeFiles/ablation_tsu_latency.dir/ablation_tsu_latency.cpp.o"
  "CMakeFiles/ablation_tsu_latency.dir/ablation_tsu_latency.cpp.o.d"
  "ablation_tsu_latency"
  "ablation_tsu_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tsu_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
