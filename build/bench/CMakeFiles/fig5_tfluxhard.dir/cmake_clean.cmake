file(REMOVE_RECURSE
  "CMakeFiles/fig5_tfluxhard.dir/fig5_tfluxhard.cpp.o"
  "CMakeFiles/fig5_tfluxhard.dir/fig5_tfluxhard.cpp.o.d"
  "fig5_tfluxhard"
  "fig5_tfluxhard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_tfluxhard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
