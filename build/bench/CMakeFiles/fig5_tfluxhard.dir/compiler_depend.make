# Empty compiler generated dependencies file for fig5_tfluxhard.
# This may be replaced when dependencies are built.
