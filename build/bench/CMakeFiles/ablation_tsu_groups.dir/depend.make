# Empty dependencies file for ablation_tsu_groups.
# This may be replaced when dependencies are built.
