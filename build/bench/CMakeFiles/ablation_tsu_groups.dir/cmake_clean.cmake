file(REMOVE_RECURSE
  "CMakeFiles/ablation_tsu_groups.dir/ablation_tsu_groups.cpp.o"
  "CMakeFiles/ablation_tsu_groups.dir/ablation_tsu_groups.cpp.o.d"
  "ablation_tsu_groups"
  "ablation_tsu_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tsu_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
