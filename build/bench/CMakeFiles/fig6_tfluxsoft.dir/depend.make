# Empty dependencies file for fig6_tfluxsoft.
# This may be replaced when dependencies are built.
