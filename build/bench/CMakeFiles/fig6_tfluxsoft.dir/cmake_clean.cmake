file(REMOVE_RECURSE
  "CMakeFiles/fig6_tfluxsoft.dir/fig6_tfluxsoft.cpp.o"
  "CMakeFiles/fig6_tfluxsoft.dir/fig6_tfluxsoft.cpp.o.d"
  "fig6_tfluxsoft"
  "fig6_tfluxsoft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_tfluxsoft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
