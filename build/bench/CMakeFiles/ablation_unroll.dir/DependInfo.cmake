
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_unroll.cpp" "bench/CMakeFiles/ablation_unroll.dir/ablation_unroll.cpp.o" "gcc" "bench/CMakeFiles/ablation_unroll.dir/ablation_unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/tflux_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cell/CMakeFiles/tflux_cell.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tflux_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/tflux_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tflux_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tflux_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
