file(REMOVE_RECURSE
  "CMakeFiles/fig5x86_tfluxhard.dir/fig5x86_tfluxhard.cpp.o"
  "CMakeFiles/fig5x86_tfluxhard.dir/fig5x86_tfluxhard.cpp.o.d"
  "fig5x86_tfluxhard"
  "fig5x86_tfluxhard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5x86_tfluxhard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
