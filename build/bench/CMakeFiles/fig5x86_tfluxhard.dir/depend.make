# Empty dependencies file for fig5x86_tfluxhard.
# This may be replaced when dependencies are built.
